#include "mt/mt_schema.h"

#include "mt/conversion.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

sql::Stmt Parse(const std::string& ddl) {
  auto r = sql::ParseStatement(ddl);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(MTSchemaTest, DefaultsResolvePerPaperSection221) {
  MTSchema schema;
  // Attributes of tenant-specific tables default to tenant-specific.
  ASSERT_OK(schema.RegisterTable(*Parse("CREATE TABLE t SPECIFIC (a INTEGER, "
                                        "b VARCHAR(5) COMPARABLE)")
                                      .create_table));
  const MTTableInfo* t = schema.FindTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->tenant_specific());
  EXPECT_EQ(t->FindColumn("a")->comparability,
            sql::Comparability::kTenantSpecific);
  EXPECT_EQ(t->FindColumn("b")->comparability,
            sql::Comparability::kComparable);
  // Tables default to global; attributes of global tables to comparable.
  ASSERT_OK(schema.RegisterTable(
      *Parse("CREATE TABLE g (x INTEGER)").create_table));
  const MTTableInfo* g = schema.FindTable("g");
  EXPECT_FALSE(g->tenant_specific());
  EXPECT_EQ(g->FindColumn("x")->comparability,
            sql::Comparability::kComparable);
}

TEST(MTSchemaTest, GlobalTablesOnlyComparable) {
  MTSchema schema;
  auto st = schema.RegisterTable(
      *Parse("CREATE TABLE g (x INTEGER SPECIFIC)").create_table);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(MTSchemaTest, ConvertibleRequiresFunctionPair) {
  MTSchema schema;
  // The parser enforces @to @from; simulate a missing pair via the struct.
  sql::CreateTableStmt ct;
  ct.name = "t";
  ct.mt_specific = true;
  sql::ColumnDef col;
  col.name = "v";
  col.comparability = sql::Comparability::kConvertible;
  ct.columns.push_back(std::move(col));
  EXPECT_EQ(schema.RegisterTable(ct).code(), StatusCode::kInvalidArgument);
}

TEST(MTSchemaTest, CaseInsensitiveLookupAndDrop) {
  MTSchema schema;
  ASSERT_OK(schema.RegisterTable(
      *Parse("CREATE TABLE Employees SPECIFIC (a INTEGER)").create_table));
  EXPECT_NE(schema.FindTable("EMPLOYEES"), nullptr);
  EXPECT_NE(schema.FindTable("employees")->FindColumn("A"), nullptr);
  EXPECT_FALSE(
      schema
          .RegisterTable(
              *Parse("CREATE TABLE EMPLOYEES (b INTEGER)").create_table)
          .ok());
  ASSERT_OK(schema.DropTable("Employees"));
  EXPECT_EQ(schema.FindTable("employees"), nullptr);
}

TEST(MTSchemaTest, TenantSpecificTableList) {
  MTSchema schema;
  ASSERT_OK(schema.RegisterTable(
      *Parse("CREATE TABLE b SPECIFIC (x INTEGER)").create_table));
  ASSERT_OK(schema.RegisterTable(
      *Parse("CREATE TABLE a SPECIFIC (x INTEGER)").create_table));
  ASSERT_OK(
      schema.RegisterTable(*Parse("CREATE TABLE g (x INTEGER)").create_table));
  EXPECT_EQ(schema.TenantSpecificTables(),
            (std::vector<std::string>{"a", "b"}));
}

TEST(ConversionRegistryTest, LookupByEitherFunction) {
  ConversionRegistry reg;
  ConversionPair p;
  p.name = "currency";
  p.to_universal = "cToU";
  p.from_universal = "cFromU";
  p.cls = ConversionClass::kMultiplicative;
  ASSERT_OK(reg.Register(p));
  bool is_to = false;
  const ConversionPair* found = reg.FindByFunction("ctou", &is_to);
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(is_to);
  found = reg.FindByFunction("CFROMU", &is_to);
  ASSERT_NE(found, nullptr);
  EXPECT_FALSE(is_to);
  EXPECT_TRUE(reg.IsConversionFunction("cToU"));
  EXPECT_FALSE(reg.IsConversionFunction("other"));
  EXPECT_NE(reg.FindByName("currency"), nullptr);
  EXPECT_FALSE(reg.Register(p).ok());  // duplicate
}

TEST(ConversionRegistryTest, OrderPreservingDerivedFromClass) {
  ConversionPair p;
  p.cls = ConversionClass::kMultiplicative;
  EXPECT_TRUE(p.order_preserving());
  p.cls = ConversionClass::kLinear;
  EXPECT_TRUE(p.order_preserving());
  p.cls = ConversionClass::kOrderPreserving;
  EXPECT_TRUE(p.order_preserving());
  p.cls = ConversionClass::kEqualityOnly;
  EXPECT_FALSE(p.order_preserving());
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
