// Unit tests for the static rewrite auditor (src/mt/audit/): invariant
// proofs over the paper's running-example schema (Figure 2), suppression
// legality, type soundness, the canonicalizing normalizer's cross-level
// equivalence evidence and the enforcement gate.
#include "mt/audit/audit.h"

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/udf.h"
#include "mt/audit/mutators.h"
#include "mt/audit/normalizer.h"
#include "mt/conversion.h"
#include "mt/mt_schema.h"
#include "mt/optimizer.h"
#include "mt/rewriter.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto employees = sql::ParseStatement(R"(CREATE TABLE Employees SPECIFIC (
        E_emp_id INTEGER NOT NULL SPECIFIC,
        E_name VARCHAR(25) NOT NULL COMPARABLE,
        E_role_id INTEGER NOT NULL SPECIFIC,
        E_reg_id INTEGER NOT NULL COMPARABLE,
        E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
        E_age INTEGER NOT NULL COMPARABLE))");
    ASSERT_OK(employees);
    ASSERT_OK(schema_.RegisterTable(*employees.value().create_table));
    auto roles = sql::ParseStatement(R"(CREATE TABLE Roles SPECIFIC (
        R_role_id INTEGER NOT NULL SPECIFIC,
        R_name VARCHAR(25) NOT NULL COMPARABLE))");
    ASSERT_OK(roles);
    ASSERT_OK(schema_.RegisterTable(*roles.value().create_table));
    auto regions = sql::ParseStatement(R"(CREATE TABLE Regions (
        Re_reg_id INTEGER NOT NULL,
        Re_name VARCHAR(25) NOT NULL))");
    ASSERT_OK(regions);
    ASSERT_OK(schema_.RegisterTable(*regions.value().create_table));

    ConversionPair currency;
    currency.name = "currency";
    currency.to_universal = "currencyToUniversal";
    currency.from_universal = "currencyFromUniversal";
    currency.cls = ConversionClass::kMultiplicative;
    currency.inline_spec.kind = InlineSpec::Kind::kMultiplicative;
    currency.inline_spec.tenant_fk = "T_currency_key";
    currency.inline_spec.meta_table = "CurrencyTransform";
    currency.inline_spec.meta_key = "CT_currency_key";
    currency.inline_spec.to_col = "CT_to_universal";
    currency.inline_spec.from_col = "CT_from_universal";
    ASSERT_OK(conversions_.Register(currency));

    sql::TypeDecl dec;
    dec.id = TypeId::kDecimal;
    dec.precision = 15;
    dec.scale = 2;
    sql::TypeDecl intt;
    intt.id = TypeId::kInt;
    RegisterUdf("currencyToUniversal", dec, {dec, intt});
    RegisterUdf("currencyFromUniversal", dec, {dec, intt});
  }

  void RegisterUdf(const std::string& name, const sql::TypeDecl& ret,
                   const std::vector<sql::TypeDecl>& args) {
    auto udf = std::make_unique<engine::Udf>();
    udf->name = name;
    udf->arg_types = args;
    udf->return_type = ret;
    udf->volatility = sql::Volatility::kImmutable;
    ASSERT_OK(udfs_.Register(std::move(udf)));
  }

  /// Rewrite an MTSQL statement for (client, dataset) under `opts`.
  std::vector<sql::Stmt> RewriteAll(const std::string& mtsql, int64_t client,
                                    std::vector<int64_t> dataset,
                                    RewriteOptions opts = {}) {
    Rewriter rw(&schema_, &conversions_, client, std::move(dataset), opts);
    auto stmt = sql::ParseStatement(mtsql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto out = rw.RewriteStatement(stmt.value());
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? std::move(out).value() : std::vector<sql::Stmt>{};
  }

  audit::AuditContext MakeCtx(int64_t client, std::vector<int64_t> dataset,
                              std::vector<int64_t> all_tenants,
                              RewriteOptions opts = {}) {
    audit::AuditContext ctx;
    ctx.schema = &schema_;
    ctx.conversions = &conversions_;
    ctx.udfs = &udfs_;
    ctx.client = client;
    ctx.dataset = std::move(dataset);
    ctx.all_tenants = std::move(all_tenants);
    ctx.options = opts;
    return ctx;
  }

  audit::StatementAudit Audit(const sql::Stmt& stmt,
                              const audit::AuditContext& ctx) {
    audit::RewriteAuditor auditor(&ctx);
    audit::StatementAudit out;
    auditor.AuditRewrite(stmt, &out);
    return out;
  }

  static bool HasCode(const audit::StatementAudit& a, audit::AuditCode code) {
    for (const auto& v : a.violations) {
      if (v.code == code) return true;
    }
    return false;
  }

  MTSchema schema_;
  ConversionRegistry conversions_;
  engine::UdfRegistry udfs_;
};

// ---------------------------------------------------------------------------
// Rewrite invariants: clean rewrites audit clean, each mutator's damage is
// caught with its machine-readable code.
// ---------------------------------------------------------------------------

TEST_F(AuditTest, CleanRewriteAuditsOk) {
  auto stmts = RewriteAll(
      "SELECT E_name, E_salary FROM Employees WHERE E_salary > 100", 0,
      {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  audit::StatementAudit a = Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}));
  EXPECT_TRUE(a.ok()) << a.Message();
  EXPECT_EQ(a.Summary(), "ok");
}

TEST_F(AuditTest, StrippedDFilterCaught) {
  auto stmts = RewriteAll("SELECT E_age FROM Employees", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  EXPECT_GT(audit::StripDFilters(&stmts[0]), 0);
  audit::StatementAudit a = Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kDFilterMissing)) << a.Message();
  EXPECT_NE(a.Summary().find("FAILED"), std::string::npos);
  EXPECT_NE(a.Summary().find("DFILTER_MISSING"), std::string::npos);
}

TEST_F(AuditTest, DFilterSetMismatchCaught) {
  // Rewritten for D' = {0, 1} but audited under the claim D' = {0, 2}.
  auto stmts = RewriteAll("SELECT E_age FROM Employees", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  audit::StatementAudit a = Audit(stmts[0], MakeCtx(0, {0, 2}, {0, 1, 2}));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kDFilterSetMismatch))
      << a.Message();
}

TEST_F(AuditTest, UnbalancedConversionCaught) {
  auto stmts = RewriteAll("SELECT E_salary FROM Employees", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  EXPECT_GT(audit::UnbalanceConversionPairs(&stmts[0], &conversions_), 0);
  audit::StatementAudit a = Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kConversionUnbalanced))
      << a.Message();
  EXPECT_NE(a.Summary().find("CONVERSION_PAIR_UNBALANCED"),
            std::string::npos);
}

TEST_F(AuditTest, MissingConversionCaught) {
  // A raw convertible reference without drop_conversions provenance.
  auto stmt = sql::ParseStatement(
      "SELECT E_salary FROM Employees WHERE Employees.ttid IN (0, 1)");
  ASSERT_OK(stmt);
  audit::StatementAudit a = Audit(stmt.value(), MakeCtx(0, {0, 1}, {0, 1, 2}));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kConversionMissing))
      << a.Message();
}

TEST_F(AuditTest, DroppedTtidJoinCaught) {
  auto stmts = RewriteAll(
      "SELECT E_name FROM Employees, Roles WHERE E_role_id = R_role_id", 0,
      {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  EXPECT_GT(audit::DropTtidJoinPredicates(&stmts[0]), 0);
  audit::StatementAudit a = Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kTtidJoinMissing)) << a.Message();
}

TEST_F(AuditTest, RevertedMembershipPairingCaught) {
  auto stmts = RewriteAll(
      "SELECT E_name FROM Employees WHERE E_role_id IN "
      "(SELECT R_role_id FROM Roles)",
      0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  EXPECT_GT(audit::DropTtidJoinPredicates(&stmts[0]), 0);
  audit::StatementAudit a = Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kTtidJoinMissing)) << a.Message();
}

TEST_F(AuditTest, LeakedTtidProjectionCaught) {
  auto stmts = RewriteAll("SELECT * FROM Employees", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  EXPECT_EQ(audit::LeakTtidThroughStar(&stmts[0], &schema_), 1);
  audit::StatementAudit a = Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kTtidProjectionLeak))
      << a.Message();
}

TEST_F(AuditTest, IncomparableComparisonCaught) {
  // The rewriter refuses this shape up front (section 2.4.2); feed the
  // auditor the un-rewritable statement directly to prove the independent
  // re-statement of the rule catches it too.
  auto stmt = sql::ParseStatement(
      "SELECT E_name FROM Employees WHERE E_role_id = E_age");
  ASSERT_OK(stmt);
  audit::StatementAudit a = Audit(stmt.value(), MakeCtx(0, {0, 1}, {0, 1, 2}));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kIncomparableAttributes))
      << a.Message();
}

TEST_F(AuditTest, InsertTtidValidated) {
  auto stmts = RewriteAll(
      "INSERT INTO Employees VALUES (1, 'ann', 2, 3, 100, 30)", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 2u);  // one statement per tenant of D'
  audit::AuditContext ctx = MakeCtx(0, {0, 1}, {0, 1, 2});
  for (const auto& s : stmts) {
    audit::StatementAudit a = Audit(s, ctx);
    EXPECT_TRUE(a.ok()) << a.Message();
  }
  // Point one row's ttid outside D'.
  ASSERT_FALSE(stmts[0].insert->rows.empty());
  stmts[0].insert->rows[0].back() = sql::IntLit(7);
  audit::StatementAudit a = Audit(stmts[0], ctx);
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kInsertTtidInvalid))
      << a.Message();
}

// ---------------------------------------------------------------------------
// o1 suppression legality (paper section 4.1).
// ---------------------------------------------------------------------------

TEST_F(AuditTest, LegalSuppressionsAuditOk) {
  RewriteOptions opts;
  opts.drop_dfilters = true;     // D' = all tenants below
  RewriteOptions single;
  single.drop_ttid_joins = true;  // |D'| = 1
  single.drop_conversions = true;  // D' = {C}

  auto all = RewriteAll("SELECT E_age FROM Employees", 0, {0, 1}, opts);
  ASSERT_EQ(all.size(), 1u);
  audit::StatementAudit a =
      Audit(all[0], MakeCtx(0, {0, 1}, {0, 1}, opts));
  EXPECT_TRUE(a.ok()) << a.Message();

  auto own = RewriteAll(
      "SELECT E_salary FROM Employees, Roles WHERE E_role_id = R_role_id", 0,
      {0}, single);
  ASSERT_EQ(own.size(), 1u);
  a = Audit(own[0], MakeCtx(0, {0}, {0, 1}, single));
  EXPECT_TRUE(a.ok()) << a.Message();
}

TEST_F(AuditTest, IllegalDFilterSuppressionCaught) {
  RewriteOptions opts;
  opts.drop_dfilters = true;
  auto stmts = RewriteAll("SELECT E_age FROM Employees", 0, {0, 1}, opts);
  ASSERT_EQ(stmts.size(), 1u);
  // D' = {0, 1} does not cover the universe {0, 1, 2}.
  audit::StatementAudit a =
      Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}, opts));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kDFilterSuppressionIllegal))
      << a.Message();
}

TEST_F(AuditTest, IllegalConversionSuppressionCaught) {
  RewriteOptions opts;
  opts.drop_conversions = true;
  auto stmts = RewriteAll("SELECT E_salary FROM Employees", 0, {0, 1}, opts);
  ASSERT_EQ(stmts.size(), 1u);
  // drop_conversions claimed although D' = {0, 1} != {C}.
  audit::StatementAudit a =
      Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}, opts));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kConversionSuppressionIllegal))
      << a.Message();
}

TEST_F(AuditTest, IllegalTtidJoinSuppressionCaught) {
  RewriteOptions opts;
  opts.drop_ttid_joins = true;
  auto stmts = RewriteAll(
      "SELECT E_name FROM Employees, Roles WHERE E_role_id = R_role_id", 0,
      {0, 1}, opts);
  ASSERT_EQ(stmts.size(), 1u);
  audit::StatementAudit a =
      Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}, opts));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kTtidJoinSuppressionIllegal))
      << a.Message();
}

TEST_F(AuditTest, IllegalOptionCombosRefusedByRewriter) {
  auto stmt = sql::ParseStatement("SELECT E_age FROM Employees");
  ASSERT_OK(stmt);
  RewriteOptions opts;
  opts.universe = {0, 1, 2};
  opts.drop_ttid_joins = true;
  {
    Rewriter rw(&schema_, &conversions_, 0, {0, 1}, opts);
    auto out = rw.RewriteStatement(stmt.value());
    ASSERT_FALSE(out.ok());
    EXPECT_NE(out.status().ToString().find(
                  "ILLEGAL_REWRITE_OPTIONS: drop_ttid_joins requires"),
              std::string::npos)
        << out.status().ToString();
  }
  opts.drop_ttid_joins = false;
  opts.drop_conversions = true;
  {
    Rewriter rw(&schema_, &conversions_, 0, {1}, opts);
    auto out = rw.RewriteStatement(stmt.value());
    ASSERT_FALSE(out.ok());
    EXPECT_NE(out.status().ToString().find(
                  "ILLEGAL_REWRITE_OPTIONS: drop_conversions requires"),
              std::string::npos)
        << out.status().ToString();
  }
  opts.drop_conversions = false;
  opts.drop_dfilters = true;
  {
    Rewriter rw(&schema_, &conversions_, 0, {0, 1}, opts);
    auto out = rw.RewriteStatement(stmt.value());
    ASSERT_FALSE(out.ok());
    EXPECT_NE(out.status().ToString().find(
                  "ILLEGAL_REWRITE_OPTIONS: drop_dfilters requires"),
              std::string::npos)
        << out.status().ToString();
  }
  // An empty universe (bare Rewriter) skips the validation entirely.
  opts.universe.clear();
  Rewriter rw(&schema_, &conversions_, 0, {0, 1}, opts);
  EXPECT_OK(rw.RewriteStatement(stmt.value()).status());
}

// ---------------------------------------------------------------------------
// Type soundness (tentpole part 2).
// ---------------------------------------------------------------------------

TEST_F(AuditTest, TypeMismatchCaught) {
  auto stmts = RewriteAll(
      "SELECT E_name FROM Employees WHERE E_age > 'abc'", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  audit::StatementAudit a = Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kTypeMismatch)) << a.Message();
}

TEST_F(AuditTest, UnknownFunctionCaught) {
  auto stmts =
      RewriteAll("SELECT nosuchfn(E_age) FROM Employees", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  audit::StatementAudit a = Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kUnknownFunction)) << a.Message();
}

TEST_F(AuditTest, FunctionArityMismatchCaught) {
  auto stmts = RewriteAll(
      "SELECT currencyToUniversal(E_age) FROM Employees", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  audit::StatementAudit a = Audit(stmts[0], MakeCtx(0, {0, 1}, {0, 1, 2}));
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kFunctionArityMismatch))
      << a.Message();
}

// ---------------------------------------------------------------------------
// Cross-level equivalence (tentpole part 3): the conversion push-up (o2)
// normalizes back to the canonical form; legal o1 elisions normalize to the
// canonical form under caller-proven legality options; the restructuring
// passes are recognized by their artifacts.
// ---------------------------------------------------------------------------

TEST_F(AuditTest, PushUpNormalizesToCanonical) {
  auto stmts = RewriteAll(
      "SELECT E_name FROM Employees WHERE E_salary > 100 "
      "ORDER BY E_salary",
      0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  auto pre = stmts[0].select->Clone();
  Optimizer opt(&conversions_, 0);
  ASSERT_OK(opt.Optimize(stmts[0].select.get(), OptLevel::kO2));
  // The optimizer moved the wrappers; the printed texts differ...
  EXPECT_NE(sql::PrintSelect(*pre), sql::PrintSelect(*stmts[0].select));
  // ...but both normalize to the same canonical text.
  EXPECT_EQ(audit::NormalizeSelectText(*pre, &conversions_),
            audit::NormalizeSelectText(*stmts[0].select, &conversions_));

  audit::AuditContext ctx = MakeCtx(0, {0, 1}, {0, 1, 2});
  audit::RewriteAuditor auditor(&ctx);
  audit::StatementAudit a;
  auditor.AuditOptimized(*pre, *stmts[0].select, &a);
  EXPECT_EQ(a.equivalence, audit::EquivalenceCode::kCanonical);
  EXPECT_TRUE(a.ok()) << a.Message();
  EXPECT_EQ(a.Summary(), "ok, equivalence: canonical");
}

TEST_F(AuditTest, O1ElisionsNormalizeToCanonicalUnderProvenLegality) {
  const std::string q =
      "SELECT E_name, E_salary FROM Employees, Roles "
      "WHERE E_role_id = R_role_id AND E_salary > 100";
  // Canonical rewrite for D' = {0} vs the o1 rewrite (drops conversions and
  // ttid joins; D-filters stay since {0} is not all tenants).
  auto canonical = RewriteAll(q, 0, {0});
  RewriteOptions o1;
  o1.drop_ttid_joins = true;
  o1.drop_conversions = true;
  auto elided = RewriteAll(q, 0, {0}, o1);
  ASSERT_EQ(canonical.size(), 1u);
  ASSERT_EQ(elided.size(), 1u);
  audit::NormalizeOptions norm;
  norm.elide_wrappers = true;    // legal: D' = {C}
  norm.strip_ttid_joins = true;  // legal: |D'| = 1
  EXPECT_EQ(
      audit::NormalizeSelectText(*canonical[0].select, &conversions_, norm),
      audit::NormalizeSelectText(*elided[0].select, &conversions_));

  // D-filter elision: canonical for D' = all tenants vs drop_dfilters.
  auto filtered = RewriteAll(q, 0, {0, 1});
  RewriteOptions all;
  all.drop_dfilters = true;
  auto unfiltered = RewriteAll(q, 0, {0, 1}, all);
  ASSERT_EQ(filtered.size(), 1u);
  ASSERT_EQ(unfiltered.size(), 1u);
  audit::NormalizeOptions strip;
  strip.strip_dfilter_literals = {0, 1};  // legal: D' covers all tenants
  EXPECT_EQ(
      audit::NormalizeSelectText(*filtered[0].select, &conversions_, strip),
      audit::NormalizeSelectText(*unfiltered[0].select, &conversions_));
}

TEST_F(AuditTest, AggregationDistributionDivergenceNamed) {
  auto stmts = RewriteAll("SELECT SUM(E_salary) FROM Employees", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  auto pre = stmts[0].select->Clone();
  Optimizer opt(&conversions_, 0);
  ASSERT_OK(opt.Optimize(stmts[0].select.get(), OptLevel::kO3));
  ASSERT_NE(sql::PrintSelect(*stmts[0].select).find("__part"),
            std::string::npos)
      << sql::PrintSelect(*stmts[0].select);
  audit::AuditContext ctx = MakeCtx(0, {0, 1}, {0, 1, 2});
  audit::RewriteAuditor auditor(&ctx);
  audit::StatementAudit a;
  auditor.AuditOptimized(*pre, *stmts[0].select, &a);
  EXPECT_EQ(a.equivalence, audit::EquivalenceCode::kDivergeAggDistribution);
  EXPECT_TRUE(a.ok()) << a.Message();
  EXPECT_EQ(a.Summary(), "ok, equivalence: DIVERGE_AGG_DISTRIBUTION");
}

TEST_F(AuditTest, ConversionInlineDivergenceNamed) {
  auto stmts = RewriteAll(
      "SELECT E_name FROM Employees WHERE E_salary > 100", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  auto pre = stmts[0].select->Clone();
  Optimizer opt(&conversions_, 0);
  ASSERT_OK(opt.Optimize(stmts[0].select.get(), OptLevel::kInlineOnly));
  audit::AuditContext ctx = MakeCtx(0, {0, 1}, {0, 1, 2});
  audit::RewriteAuditor auditor(&ctx);
  audit::StatementAudit a;
  auditor.AuditOptimized(*pre, *stmts[0].select, &a);
  EXPECT_EQ(a.equivalence, audit::EquivalenceCode::kDivergeConversionInline)
      << sql::PrintSelect(*stmts[0].select);
  EXPECT_TRUE(a.ok()) << a.Message();
}

TEST_F(AuditTest, UnexplainedDivergenceIsViolation) {
  auto stmts = RewriteAll("SELECT E_age FROM Employees", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 1u);
  auto pre = stmts[0].select->Clone();
  // Simulate a broken optimizer pass: silently change the D-filter literal.
  audit::StripDFilters(&stmts[0]);
  audit::AuditContext ctx = MakeCtx(0, {0, 1}, {0, 1, 2});
  audit::RewriteAuditor auditor(&ctx);
  audit::StatementAudit a;
  auditor.AuditOptimized(*pre, *stmts[0].select, &a);
  EXPECT_EQ(a.equivalence, audit::EquivalenceCode::kUnknown);
  EXPECT_TRUE(HasCode(a, audit::AuditCode::kEquivalenceUnknownDivergence))
      << a.Message();
  EXPECT_NE(a.Summary().find("EQUIVALENCE_UNKNOWN_DIVERGENCE"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Enforcement gate.
// ---------------------------------------------------------------------------

TEST_F(AuditTest, AuditEnabledFollowsEnvironment) {
  setenv("MTBASE_AUDIT_REWRITES", "1", 1);
  EXPECT_TRUE(audit::AuditEnabled());
  setenv("MTBASE_AUDIT_REWRITES", "0", 1);
  EXPECT_FALSE(audit::AuditEnabled());
  unsetenv("MTBASE_AUDIT_REWRITES");
#ifndef NDEBUG
  EXPECT_TRUE(audit::AuditEnabled());  // always on in debug builds
#else
  EXPECT_FALSE(audit::AuditEnabled());
#endif
}

TEST_F(AuditTest, ReportAggregatesAcrossStatements) {
  auto stmts = RewriteAll(
      "INSERT INTO Employees VALUES (1, 'ann', 2, 3, 100, 30)", 0, {0, 1});
  ASSERT_EQ(stmts.size(), 2u);
  audit::AuditContext ctx = MakeCtx(0, {0, 1}, {0, 1, 2});
  audit::RewriteAuditor auditor(&ctx);
  audit::AuditReport report;
  report.statements.resize(stmts.size());
  for (size_t i = 0; i < stmts.size(); ++i) {
    // Break both per-tenant statements the same way: the report codes stay
    // deduplicated.
    stmts[i].insert->rows[0].back() = sql::IntLit(7);
    auditor.AuditRewrite(stmts[i], &report.statements[i]);
  }
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.total_violations(), 2u);
  EXPECT_EQ(report.Codes(), "INSERT_TTID_INVALID");
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
