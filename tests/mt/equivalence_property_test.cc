// Property test: for randomly generated MTSQL queries over the Figure-2
// schema, every optimization level must return exactly the canonical
// rewrite's result (the optimizations are semantic no-ops — paper section 4).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "mt/mtbase.h"
#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

class EquivalenceFixture {
 public:
  static EquivalenceFixture& Get() {
    static EquivalenceFixture f;
    return f;
  }

  Middleware* mw() { return mw_.get(); }

 private:
  EquivalenceFixture() {
    db_ = std::make_unique<engine::Database>();
    mw_ = std::make_unique<Middleware>(db_.get());
    for (int64_t t = 0; t < 4; ++t) mw_->RegisterTenant(t);
    Status st = db_->ExecuteScript(R"(
      CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL);
      CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,
        CT_to_universal DECIMAL(15,6) NOT NULL, CT_from_universal DECIMAL(15,6) NOT NULL);
      INSERT INTO Tenant VALUES (0, 0), (1, 1), (2, 2), (3, 1);
      INSERT INTO CurrencyTransform VALUES (0, 1, 1), (1, 0.5, 2), (2, 0.125, 8);
      CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
        AS 'SELECT CT_to_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE;
      CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
        AS 'SELECT CT_from_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE;
    )").status();
    if (!st.ok()) {
      ADD_FAILURE() << st.ToString();
      return;
    }
    ConversionPair currency;
    currency.name = "currency";
    currency.to_universal = "currencyToUniversal";
    currency.from_universal = "currencyFromUniversal";
    currency.cls = ConversionClass::kMultiplicative;
    currency.inline_spec.kind = InlineSpec::Kind::kMultiplicative;
    currency.inline_spec.tenant_fk = "T_currency_key";
    currency.inline_spec.meta_table = "CurrencyTransform";
    currency.inline_spec.meta_key = "CT_currency_key";
    currency.inline_spec.to_col = "CT_to_universal";
    currency.inline_spec.from_col = "CT_from_universal";
    st = mw_->conversions()->Register(currency);
    if (!st.ok()) ADD_FAILURE() << st.ToString();

    Session modeller(mw_.get(), 0);
    st = modeller
             .ExecuteScript(R"(
      CREATE TABLE Employees SPECIFIC (
        E_emp_id INTEGER NOT NULL SPECIFIC,
        E_name VARCHAR(25) NOT NULL COMPARABLE,
        E_role_id INTEGER NOT NULL SPECIFIC,
        E_reg_id INTEGER NOT NULL COMPARABLE,
        E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
        E_age INTEGER NOT NULL COMPARABLE);
      CREATE TABLE Roles SPECIFIC (
        R_role_id INTEGER NOT NULL SPECIFIC,
        R_name VARCHAR(25) NOT NULL COMPARABLE))")
             .status();
    if (!st.ok()) {
      ADD_FAILURE() << st.ToString();
      return;
    }
    // Random data for 4 tenants, each with 5 roles and 40 employees; every
    // tenant grants public read.
    Rng rng(2026);
    const char* names[] = {"ann", "bob", "cat", "dan", "eve", "fox",
                           "gus", "hal", "ivy", "joe"};
    for (int64_t t = 0; t < 4; ++t) {
      Session owner(mw_.get(), t);
      for (int r = 0; r < 5; ++r) {
        std::string sql = "INSERT INTO Roles VALUES (" + std::to_string(r) +
                          ", 'role" + std::to_string(rng.Uniform(0, 9)) + "')";
        st = owner.Execute(sql).status();
        if (!st.ok()) ADD_FAILURE() << st.ToString();
      }
      for (int e = 0; e < 40; ++e) {
        std::string sql =
            "INSERT INTO Employees VALUES (" + std::to_string(e) + ", '" +
            names[rng.Uniform(0, 9)] + "', " + std::to_string(rng.Uniform(0, 4)) +
            ", " + std::to_string(rng.Uniform(0, 5)) + ", " +
            std::to_string(rng.Uniform(100, 99999)) + ", " +
            std::to_string(rng.Uniform(18, 70)) + ")";
        st = owner.Execute(sql).status();
        if (!st.ok()) ADD_FAILURE() << st.ToString();
      }
      mw_->privileges()->Grant(t, "", Privilege::kRead, kPublicGrantee);
    }
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<Middleware> mw_;
};

/// Random query generator over the Employees/Roles schema. Each query is a
/// SELECT with random aggregates or projections, random predicates on
/// comparable/convertible attributes (tenant-specific ones only against
/// tenant-specific or constants) and random group/order clauses.
std::string RandomQuery(Rng* rng) {
  bool join = rng->Chance(0.4);
  bool aggregate = rng->Chance(0.6);
  std::string sql = "SELECT ";
  if (aggregate) {
    switch (rng->Uniform(0, 4)) {
      case 0: sql += "COUNT(*) AS c"; break;
      case 1: sql += "SUM(E_salary) AS s"; break;
      case 2: sql += "AVG(E_salary) AS a, COUNT(*) AS c"; break;
      case 3: sql += "MIN(E_salary) AS lo, MAX(E_age) AS hi"; break;
      default: sql += "SUM(E_salary * (1 + E_age)) AS weighted"; break;
    }
  } else {
    sql += "E_name, E_salary, E_age";
    if (join) sql += ", R_name";
  }
  sql += " FROM Employees";
  std::vector<std::string> preds;
  if (join) {
    sql += ", Roles";
    preds.push_back("E_role_id = R_role_id");
  }
  if (rng->Chance(0.7)) {
    switch (rng->Uniform(0, 3)) {
      case 0:
        preds.push_back("E_salary > " + std::to_string(rng->Uniform(0, 80000)));
        break;
      case 1:
        preds.push_back("E_age BETWEEN " + std::to_string(rng->Uniform(18, 40)) +
                        " AND " + std::to_string(rng->Uniform(41, 70)));
        break;
      case 2:
        preds.push_back("E_salary < (SELECT AVG(E2.E_salary) FROM Employees E2)");
        break;
      default:
        preds.push_back("E_reg_id IN (0, 2, 4)");
        break;
    }
  }
  for (size_t i = 0; i < preds.size(); ++i) {
    sql += (i == 0 ? " WHERE " : " AND ") + preds[i];
  }
  if (aggregate && rng->Chance(0.5)) {
    sql += " GROUP BY E_reg_id";
    // Keep output deterministic for comparison.
    sql = sql.substr(0, 7) + "E_reg_id, " + sql.substr(7);
    sql += " ORDER BY E_reg_id";
  } else if (!aggregate) {
    sql += " ORDER BY E_name, E_salary, E_age";
  }
  return sql;
}

class RandomEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomEquivalenceTest, AllLevelsMatchCanonical) {
  auto& f = EquivalenceFixture::Get();
  ASSERT_NE(f.mw(), nullptr);
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  // Random client and scope per seed.
  int64_t client = rng.Uniform(0, 3);
  Session session(f.mw(), client);
  std::string scope = rng.Chance(0.3) ? "IN ()" : "IN (0, 2, 3)";
  ASSERT_OK(session.Execute("SET SCOPE = \"" + scope + "\"").status());
  for (int i = 0; i < 5; ++i) {
    std::string query = RandomQuery(&rng);
    session.set_optimization_level(OptLevel::kCanonical);
    auto gold = session.Execute(query);
    ASSERT_OK(gold);
    for (OptLevel level : {OptLevel::kO1, OptLevel::kO2, OptLevel::kO3,
                           OptLevel::kO4, OptLevel::kInlineOnly}) {
      session.set_optimization_level(level);
      auto got = session.Execute(query);
      ASSERT_OK(got);
      std::string why;
      EXPECT_TRUE(mth::ResultsEqual(gold.value(), got.value(), &why))
          << "query: " << query << "\nclient " << client << " scope " << scope
          << "\nlevel " << OptLevelName(level) << ": " << why;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalenceTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace mt
}  // namespace mtbase
