// SS (private table) vs ST (basic) layout equivalence (paper section 2,
// Figures 2 and 3).
#include "mt/ss_layout.h"

#include <gtest/gtest.h>

#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

class SsLayoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mth::MthConfig cfg;
    cfg.scale_factor = 0.001;
    cfg.num_tenants = 3;
    auto env = mth::SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                                     /*with_baseline=*/false);
    ASSERT_OK(env);
    env_ = std::move(env).value();
    info_ = env_->middleware->schema()->FindTable("customer");
    ASSERT_NE(info_, nullptr);
    tenants_ = env_->middleware->tenants();
  }

  std::unique_ptr<mth::MthEnvironment> env_;
  const MTTableInfo* info_ = nullptr;
  std::vector<int64_t> tenants_;
};

TEST_F(SsLayoutTest, SplitCreatesPrivateTablesWithoutTtid) {
  ASSERT_OK(SplitToPrivateTables(env_->mth_db.get(), env_->mth_db.get(),
                                 *info_, tenants_));
  for (int64_t t : tenants_) {
    const engine::Table* priv =
        env_->mth_db->catalog()->FindTable(PrivateTableName("customer", t));
    ASSERT_NE(priv, nullptr) << t;
    EXPECT_EQ(priv->schema().FindColumn("ttid"), -1);
    EXPECT_EQ(priv->schema().FindColumn("c_custkey"), 0);
  }
  // Row counts per tenant match the ST D-filters.
  for (int64_t t : tenants_) {
    ASSERT_OK_AND_ASSIGN(
        auto st_count,
        env_->mth_db->Execute("SELECT COUNT(*) FROM customer WHERE ttid = " +
                              std::to_string(t)));
    ASSERT_OK_AND_ASSIGN(
        auto ss_count,
        env_->mth_db->Execute("SELECT COUNT(*) FROM " +
                              PrivateTableName("customer", t)));
    EXPECT_TRUE(st_count.rows[0][0].StructuralEquals(ss_count.rows[0][0]));
  }
}

TEST_F(SsLayoutTest, SplitThenMergeIsIdentity) {
  ASSERT_OK(SplitToPrivateTables(env_->mth_db.get(), env_->mth_db.get(),
                                 *info_, tenants_));
  // Rebuild an ST table from the private ones and diff against the original.
  engine::TableSchema copy = env_->mth_db->catalog()
                                 ->FindTable("customer")
                                 ->schema();
  copy.name = "customer_merged";
  ASSERT_OK(env_->mth_db->catalog()->CreateTable(std::move(copy)));
  ASSERT_OK(MergeFromPrivateTables(env_->mth_db.get(), env_->mth_db.get(),
                                   *info_, "customer_merged", tenants_));
  ASSERT_OK_AND_ASSIGN(
      auto original,
      env_->mth_db->Execute(
          "SELECT * FROM customer ORDER BY ttid, c_custkey"));
  ASSERT_OK_AND_ASSIGN(
      auto merged,
      env_->mth_db->Execute(
          "SELECT * FROM customer_merged ORDER BY ttid, c_custkey"));
  std::string why;
  EXPECT_TRUE(mth::ResultsEqual(original, merged, &why)) << why;
}

TEST_F(SsLayoutTest, PerTenantUnionEqualsStRewrite) {
  // Section 2: applying a statement w.r.t. D in SS means applying it to the
  // logical union of the tenants' private tables. For a tenant-local filter
  // query that union must equal the rewritten ST query's result.
  ASSERT_OK(SplitToPrivateTables(env_->mth_db.get(), env_->mth_db.get(),
                                 *info_, tenants_));
  std::vector<int64_t> dataset = {1, 3};
  // ST side, through the middleware; scope = {1, 3}. The filter is on a
  // comparable attribute so no conversions interfere; client 1 keeps
  // universal formats so SS rows (tenant formats) match only for tenant-
  // specific scans of comparable columns.
  mt::Session session = env_->OpenSession(1);
  ASSERT_OK(session.Execute("SET SCOPE = \"IN (1, 3)\"").status());
  ASSERT_OK_AND_ASSIGN(
      auto st_result,
      session.Execute("SELECT c_custkey, c_nationkey FROM customer WHERE "
                      "c_nationkey < 12 ORDER BY c_custkey"));
  // SS side: per-tenant execution + union (then sorted the same way).
  ASSERT_OK_AND_ASSIGN(
      auto ss_union,
      RunPerTenantUnion(env_->mth_db.get(), *info_,
                        "WHERE c_nationkey < 12", dataset));
  // Project the union down to the two columns and sort.
  std::vector<Row> projected;
  const engine::Table* any =
      env_->mth_db->catalog()->FindTable(PrivateTableName("customer", 1));
  int key = any->schema().FindColumn("c_custkey");
  int nat = any->schema().FindColumn("c_nationkey");
  for (const Row& r : ss_union.rows) {
    projected.push_back({r[static_cast<size_t>(key)],
                         r[static_cast<size_t>(nat)]});
  }
  std::sort(projected.begin(), projected.end(),
            [](const Row& a, const Row& b) {
              return a[0].int_value() < b[0].int_value();
            });
  engine::ResultSet ss_result;
  ss_result.column_names = {"c_custkey", "c_nationkey"};
  ss_result.rows = std::move(projected);
  std::string why;
  EXPECT_TRUE(mth::ResultsEqual(st_result, ss_result, &why)) << why;
}

TEST_F(SsLayoutTest, MergeRejectsNonBasicTarget) {
  ASSERT_OK(SplitToPrivateTables(env_->mth_db.get(), env_->mth_db.get(),
                                 *info_, tenants_));
  engine::TableSchema bad;
  bad.name = "no_ttid";
  bad.columns.push_back({"x", {}, false});
  ASSERT_OK(env_->mth_db->catalog()->CreateTable(std::move(bad)));
  auto st = MergeFromPrivateTables(env_->mth_db.get(), env_->mth_db.get(),
                                   *info_, "no_ttid", tenants_);
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
