// Prepared MTSQL queries: cached rewrite + engine plans keyed by the
// compilation fingerprint, and transparent invalidation on SET SCOPE,
// GRANT/REVOKE, tenant registration and DDL. Stale-plan checks are
// byte-parity: after an invalidating event the SQL a prepared handle sends
// must equal a fresh rewrite under the new state.
#include <gtest/gtest.h>

#include "mt/mtbase.h"
#include "mt/session.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

class PreparedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    mw_ = std::make_unique<Middleware>(db_.get());
    mw_->RegisterTenant(0);
    mw_->RegisterTenant(1);
    ASSERT_OK(db_->ExecuteScript(R"(
      CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL);
      CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,
        CT_to_universal DECIMAL(15,6) NOT NULL, CT_from_universal DECIMAL(15,6) NOT NULL);
      INSERT INTO Tenant VALUES (0, 0), (1, 1);
      INSERT INTO CurrencyTransform VALUES (0, 1, 1), (1, 0.5, 2);
      CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
        AS 'SELECT CT_to_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE;
      CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
        AS 'SELECT CT_from_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE;
    )"));
    ConversionPair currency;
    currency.name = "currency";
    currency.to_universal = "currencyToUniversal";
    currency.from_universal = "currencyFromUniversal";
    currency.cls = ConversionClass::kMultiplicative;
    currency.inline_spec.kind = InlineSpec::Kind::kMultiplicative;
    currency.inline_spec.tenant_fk = "T_currency_key";
    currency.inline_spec.meta_table = "CurrencyTransform";
    currency.inline_spec.meta_key = "CT_currency_key";
    currency.inline_spec.to_col = "CT_to_universal";
    currency.inline_spec.from_col = "CT_from_universal";
    ASSERT_OK(mw_->conversions()->Register(currency));

    Session admin(mw_.get(), 0);
    ASSERT_OK(admin.Execute(R"(CREATE TABLE Employees SPECIFIC (
        E_emp_id INTEGER NOT NULL SPECIFIC,
        E_name VARCHAR(25) NOT NULL COMPARABLE,
        E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
        E_age INTEGER NOT NULL COMPARABLE))"));
    ASSERT_OK(admin.Execute(
        "INSERT INTO Employees VALUES (0,'Patrick',50000,30),"
        "(1,'John',70000,28),(2,'Alice',150000,46)"));
    Session t1(mw_.get(), 1);
    ASSERT_OK(t1.Execute(
        "INSERT INTO Employees VALUES (0,'Allan',160000,25),"
        "(1,'Nancy',400000,72),(2,'Ed',2000000,46)"));
    ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  }

  /// Byte parity: the SQL a prepared handle just executed must equal the
  /// SQL a fresh rewrite produces under the session's current state.
  void ExpectFreshParity(Session* s, PreparedQuery* pq) {
    ASSERT_OK_AND_ASSIGN(std::string fresh, s->Rewrite(pq->mtsql()));
    EXPECT_EQ(pq->sql(), fresh);
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<Middleware> mw_;
};

constexpr char kQuery[] = "SELECT E_name, E_salary FROM Employees";

TEST_F(PreparedQueryTest, ReExecutionSkipsCompilationEntirely) {
  Session s(mw_.get(), 0);
  ASSERT_OK(s.SetScope("IN (0, 1)"));
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK_AND_ASSIGN(auto first, pq.Execute());
  EXPECT_EQ(first.rows.size(), 6u);
  ExpectFreshParity(&s, &pq);

  engine::StatsScope scope(db_->stats());
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(auto rs, pq.Execute());
    EXPECT_EQ(rs.rows.size(), 6u);
  }
  engine::ExecStats d = scope.Delta();
  EXPECT_EQ(d.statements_parsed, 0u);
  EXPECT_EQ(d.statements_rewritten, 0u);
  EXPECT_EQ(d.statements_planned, 0u);
  EXPECT_EQ(d.prepare_count, 0u);
  EXPECT_EQ(d.rewrite_cache_hits, 3u);
  EXPECT_EQ(d.plan_cache_hits, 3u);
}

TEST_F(PreparedQueryTest, SetScopeInvalidates) {
  Session s(mw_.get(), 0);
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK_AND_ASSIGN(auto own, pq.Execute());
  EXPECT_EQ(own.rows.size(), 3u);
  std::string own_sql = pq.sql();

  ASSERT_OK(s.Execute("SET SCOPE = \"IN (0, 1)\""));
  engine::StatsScope scope(db_->stats());
  ASSERT_OK_AND_ASSIGN(auto all, pq.Execute());
  EXPECT_EQ(all.rows.size(), 6u);
  EXPECT_EQ(scope.Delta().statements_rewritten, 1u);
  EXPECT_EQ(scope.Delta().rewrite_cache_hits, 0u);
  EXPECT_NE(pq.sql(), own_sql);
  ExpectFreshParity(&s, &pq);

  // Setting the same scope again re-validates without another rewrite.
  ASSERT_OK(s.Execute("SET SCOPE = \"IN (0, 1)\""));
  scope.Restart();
  ASSERT_OK(pq.Execute().status());
  EXPECT_EQ(scope.Delta().statements_rewritten, 0u);
  EXPECT_EQ(scope.Delta().rewrite_cache_hits, 1u);
}

TEST_F(PreparedQueryTest, GrantRevokeInvalidates) {
  Session s(mw_.get(), 0);
  ASSERT_OK(s.SetScope("IN (0, 1)"));
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK_AND_ASSIGN(auto rs, pq.Execute());
  EXPECT_EQ(rs.rows.size(), 6u);

  // Tenant 1 withdraws read access: D' shrinks to {0}; the stale cached
  // rewrite (with tenant 1 in the D-filter) must not be reused.
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("REVOKE READ ON DATABASE FROM 0"));
  ASSERT_OK_AND_ASSIGN(rs, pq.Execute());
  EXPECT_EQ(rs.rows.size(), 3u);
  ExpectFreshParity(&s, &pq);

  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  ASSERT_OK_AND_ASSIGN(rs, pq.Execute());
  EXPECT_EQ(rs.rows.size(), 6u);
  ExpectFreshParity(&s, &pq);
}

TEST_F(PreparedQueryTest, RegisterTenantInvalidates) {
  Session s(mw_.get(), 0);
  // The empty simple scope resolves against the tenant registry.
  ASSERT_OK(s.SetScope("IN ()"));
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK_AND_ASSIGN(auto rs, pq.Execute());
  EXPECT_EQ(rs.rows.size(), 6u);

  mw_->RegisterTenant(2);
  // New tenant metadata (currency 0) so conversion joins cover tenant 2.
  ASSERT_OK(db_->Execute("INSERT INTO Tenant VALUES (2, 0)").status());
  Session t2(mw_.get(), 2);
  ASSERT_OK(t2.Execute("INSERT INTO Employees VALUES (0,'Zoe',1000,20)"));
  ASSERT_OK(t2.Execute("GRANT READ ON DATABASE TO 0"));
  ASSERT_OK_AND_ASSIGN(rs, pq.Execute());
  EXPECT_EQ(rs.rows.size(), 7u);
  ExpectFreshParity(&s, &pq);
}

TEST_F(PreparedQueryTest, DdlInvalidates) {
  Session s(mw_.get(), 0);
  ASSERT_OK(s.SetScope("IN (0, 1)"));
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK(pq.Execute().status());

  Session admin(mw_.get(), 0);
  ASSERT_OK(admin.Execute(
      "CREATE TABLE Projects SPECIFIC (P_id INTEGER NOT NULL SPECIFIC)"));
  engine::StatsScope scope(db_->stats());
  ASSERT_OK_AND_ASSIGN(auto rs, pq.Execute());
  EXPECT_EQ(rs.rows.size(), 6u);
  EXPECT_EQ(scope.Delta().statements_rewritten, 1u);  // recompiled, no reuse
  ExpectFreshParity(&s, &pq);
}

TEST_F(PreparedQueryTest, ConversionRegistrationInvalidates) {
  Session s(mw_.get(), 0);
  ASSERT_OK(s.SetScope("IN (0, 1)"));
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK(pq.Execute().status());

  // Conversion pairs drive the rewriter/optimizer, so registering one must
  // move the fingerprint and force a recompile on the next Execute.
  ConversionPair phone;
  phone.name = "phone";
  phone.to_universal = "phoneToUniversal";
  phone.from_universal = "phoneFromUniversal";
  phone.cls = ConversionClass::kEqualityOnly;
  ASSERT_OK(mw_->conversions()->Register(phone));
  engine::StatsScope scope(db_->stats());
  ASSERT_OK(pq.Execute().status());
  EXPECT_EQ(scope.Delta().statements_rewritten, 1u);
  EXPECT_EQ(scope.Delta().rewrite_cache_hits, 0u);
  ExpectFreshParity(&s, &pq);
}

TEST_F(PreparedQueryTest, ComplexScopeReResolvesDataset) {
  Session s(mw_.get(), 0);
  // Every tenant with an employee older than 50 — data-dependent, so the
  // dataset is re-resolved per execution and keyed into the fingerprint.
  ASSERT_OK(s.SetScope("FROM Employees WHERE E_age > 50"));
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK_AND_ASSIGN(auto rs, pq.Execute());
  EXPECT_EQ(rs.rows.size(), 3u);  // only tenant 1 (Nancy, 72)

  // Tenant 0 now qualifies too: the cached single-tenant rewrite is stale.
  Session admin(mw_.get(), 0);
  ASSERT_OK(admin.Execute("INSERT INTO Employees VALUES (3,'Gus',9000,80)"));
  ASSERT_OK_AND_ASSIGN(rs, pq.Execute());
  EXPECT_EQ(rs.rows.size(), 7u);
  ExpectFreshParity(&s, &pq);
}

TEST_F(PreparedQueryTest, ParamsPassThroughRewrite) {
  Session s(mw_.get(), 1);
  // Client 1 pays 2 units per USD (CT_from_universal = 2): Patrick's 50000
  // USD displays as 100000. The $1 bound value compares against converted
  // salaries in C's own format.
  ASSERT_OK(s.SetScope("IN (0, 1)"));
  Session t0(mw_.get(), 0);
  ASSERT_OK(t0.Execute("GRANT READ ON DATABASE TO 1"));
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery pq,
      s.Prepare("SELECT COUNT(*) FROM Employees WHERE E_salary <= $1"));
  EXPECT_EQ(pq.param_count(), 1);
  ASSERT_OK_AND_ASSIGN(auto rs, pq.Execute({Value::Int(100000)}));
  EXPECT_EQ(rs.rows[0][0].int_value(), 1);  // Patrick only
  ASSERT_OK_AND_ASSIGN(rs, pq.Execute({Value::Int(160000)}));
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);  // + John (140000), Allan
}

TEST_F(PreparedQueryTest, OptimizationLevelChangeRecompiles) {
  Session s(mw_.get(), 0);
  ASSERT_OK(s.SetScope("IN (0, 1)"));
  s.set_optimization_level(OptLevel::kCanonical);
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK(pq.Execute().status());
  std::string canonical = pq.sql();
  s.set_optimization_level(OptLevel::kO4);
  ASSERT_OK(pq.Execute().status());
  EXPECT_NE(pq.sql(), canonical);
  ExpectFreshParity(&s, &pq);
}

TEST_F(PreparedQueryTest, SessionStatementsNotPreparable) {
  Session s(mw_.get(), 0);
  EXPECT_EQ(s.Prepare("SET SCOPE = \"IN ()\"").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Prepare("GRANT READ ON DATABASE TO 1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Prepare("CREATE TABLE X (a INTEGER)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PreparedQueryTest, ScriptErrorsCarryStatementIndex) {
  Session s(mw_.get(), 0);
  auto r = s.ExecuteScript(
      "SELECT COUNT(*) FROM Employees;"
      "SELECT nope FROM Employees;"
      "SELECT 1");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("statement 2:"), std::string::npos)
      << r.status().ToString();
}

TEST_F(PreparedQueryTest, PreparedDmlExpandsPerTenant) {
  Session s(mw_.get(), 0);
  ASSERT_OK(s.SetScope("IN (0, 1)"));
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT ALL ON DATABASE TO 0"));
  // Tenant-specific INSERT expands into one statement per tenant in D'
  // (paper Appendix A.2), all prepared as separate engine plans.
  ASSERT_OK_AND_ASSIGN(
      PreparedQuery pq,
      s.Prepare("INSERT INTO Employees VALUES (9,'Tmp',1000,33)"));
  ASSERT_OK(pq.Execute().status());
  EXPECT_NE(pq.sql().find(";\n"), std::string::npos);
  ASSERT_OK_AND_ASSIGN(auto rs, s.Execute("SELECT COUNT(*) FROM Employees"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 8);
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
