// Cross-session shared plan cache: sharing, every invalidation edge, LRU.
//
// The cache key is the serialized compilation fingerprint (client, opt
// level, scope, dataset, privilege/schema/tenant/conversion epochs, engine
// compilation version) plus the MTSQL text, so "invalidation" is key
// non-match: any state change that must not serve stale plans produces a
// different key. Each edge test proves three things — the mutation forces a
// recompile (miss, not hit), the recompiled result is byte-identical to a
// completely fresh session's, and an unchanged statement afterwards hits
// again. The LRU tests drive SharedPlanCache directly.
#include "mt/plan_cache.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/obs/metrics.h"
#include "mt/mtbase.h"
#include "mt/session.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

std::string Canon(const engine::ResultSet& rs) { return CanonRows(rs.rows); }

/// The session_test running-example environment (two tenants, a convertible
/// salary column, currency meta tables) — rich enough that every epoch edge
/// is reachable.
class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    mw_ = std::make_unique<Middleware>(db_.get());
    mw_->RegisterTenant(0);
    mw_->RegisterTenant(1);
    ASSERT_OK(db_->ExecuteScript(R"(
      CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL);
      CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,
        CT_to_universal DECIMAL(15,6) NOT NULL, CT_from_universal DECIMAL(15,6) NOT NULL);
      INSERT INTO Tenant VALUES (0, 0), (1, 1);
      INSERT INTO CurrencyTransform VALUES (0, 1, 1), (1, 0.5, 2);
      CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
        AS 'SELECT CT_to_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE;
      CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
        AS 'SELECT CT_from_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE;
    )"));
    ConversionPair currency;
    currency.name = "currency";
    currency.to_universal = "currencyToUniversal";
    currency.from_universal = "currencyFromUniversal";
    currency.cls = ConversionClass::kMultiplicative;
    currency.inline_spec.kind = InlineSpec::Kind::kMultiplicative;
    currency.inline_spec.tenant_fk = "T_currency_key";
    currency.inline_spec.meta_table = "CurrencyTransform";
    currency.inline_spec.meta_key = "CT_currency_key";
    currency.inline_spec.to_col = "CT_to_universal";
    currency.inline_spec.from_col = "CT_from_universal";
    ASSERT_OK(mw_->conversions()->Register(currency));

    Session admin(mw_.get(), 0);
    ASSERT_OK(admin.Execute(R"(CREATE TABLE Employees SPECIFIC (
        E_emp_id INTEGER NOT NULL SPECIFIC,
        E_name VARCHAR(25) NOT NULL COMPARABLE,
        E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
        E_age INTEGER NOT NULL COMPARABLE))"));
    ASSERT_OK(admin.Execute(
        "INSERT INTO Employees VALUES (0,'Patrick',50000,30),"
        "(1,'John',70000,28),(2,'Alice',150000,46)"));
    Session t1(mw_.get(), 1);
    ASSERT_OK(t1.Execute(
        "INSERT INTO Employees VALUES (0,'Allan',160000,25),"
        "(1,'Nancy',400000,72),(2,'Ed',2000000,46)"));
  }

  uint64_t Hits() { return mw_->plan_cache()->hits(); }
  uint64_t Misses() { return mw_->plan_cache()->misses(); }

  /// Execute `sql` on a brand-new session for tenant 0 at `scope` ("" =
  /// default) and return the canonical bytes — the from-scratch baseline an
  /// adopted or recompiled plan must match exactly.
  std::string FreshBytes(const std::string& sql,
                         const std::string& scope = "") {
    Session fresh(mw_.get(), 0);
    if (!scope.empty()) {
      EXPECT_OK(fresh.Execute("SET SCOPE = \"" + scope + "\""));
    }
    auto rs = fresh.Execute(sql);
    EXPECT_OK(rs);
    return rs.ok() ? Canon(rs.value()) : std::string("<error>");
  }

  /// Run `sql` on a new session and report whether it was served from the
  /// shared cache, plus its bytes.
  struct RunOutcome {
    bool hit = false;
    std::string bytes;
  };
  RunOutcome Run(const std::string& sql, const std::string& scope = "") {
    const uint64_t hits_before = Hits();
    RunOutcome out;
    Session s(mw_.get(), 0);
    if (!scope.empty()) {
      EXPECT_OK(s.Execute("SET SCOPE = \"" + scope + "\""));
    }
    auto rs = s.Execute(sql);
    EXPECT_OK(rs);
    out.bytes = rs.ok() ? Canon(rs.value()) : std::string("<error>");
    out.hit = Hits() > hits_before;
    return out;
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<Middleware> mw_;
};

constexpr const char* kQuery =
    "SELECT E_name, E_salary FROM Employees ORDER BY E_emp_id";

TEST_F(PlanCacheTest, SecondSessionAdoptsPlansByteIdentically) {
  const uint64_t misses_before = Misses();
  RunOutcome first = Run(kQuery);
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(Misses(), misses_before + 1);
  RunOutcome second = Run(kQuery);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.bytes, first.bytes);
  EXPECT_EQ(first.bytes, FreshBytes(kQuery));  // fresh = also a hit now
  // The cache's own counters are mirrored into the process-wide registry.
  EXPECT_GE(obs::MetricsRegistry::Global()->CounterValue(
                "mtbase_mt_plan_cache_hits_total"),
            2u);
}

TEST_F(PlanCacheTest, GrantAndRevokeEachInvalidate) {
  Run(kQuery, "IN (0, 1)");  // populate (prunes to {0}: no grant yet)
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  RunOutcome after_grant = Run(kQuery, "IN (0, 1)");
  EXPECT_FALSE(after_grant.hit);  // privilege epoch moved: recompile
  EXPECT_EQ(after_grant.bytes, FreshBytes(kQuery, "IN (0, 1)"));
  RunOutcome warm = Run(kQuery, "IN (0, 1)");
  EXPECT_TRUE(warm.hit);
  ASSERT_OK(t1.Execute("REVOKE READ ON DATABASE FROM 0"));
  RunOutcome after_revoke = Run(kQuery, "IN (0, 1)");
  EXPECT_FALSE(after_revoke.hit);
  EXPECT_EQ(after_revoke.bytes, FreshBytes(kQuery, "IN (0, 1)"));
  EXPECT_NE(after_grant.bytes, after_revoke.bytes);  // D' actually changed
}

TEST_F(PlanCacheTest, MtsqlDdlInvalidates) {
  RunOutcome before = Run(kQuery);
  EXPECT_FALSE(before.hit);
  Session admin(mw_.get(), 0);
  ASSERT_OK(admin.Execute(R"(CREATE TABLE Projects SPECIFIC (
      P_id INTEGER NOT NULL SPECIFIC,
      P_name VARCHAR(25) NOT NULL COMPARABLE))"));
  RunOutcome after = Run(kQuery);
  EXPECT_FALSE(after.hit);  // schema epoch + engine version moved
  EXPECT_EQ(after.bytes, before.bytes);  // unrelated DDL: same data
  EXPECT_TRUE(Run(kQuery).hit);
}

TEST_F(PlanCacheTest, TenantRegistrationInvalidates) {
  // "IN ()" resolves against the tenant registry, so registration must
  // force a recompile under the new dataset.
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  RunOutcome before = Run(kQuery, "IN ()");
  EXPECT_FALSE(before.hit);
  mw_->RegisterTenant(7);
  RunOutcome after = Run(kQuery, "IN ()");
  EXPECT_FALSE(after.hit);  // tenant epoch moved
  EXPECT_EQ(after.bytes, FreshBytes(kQuery, "IN ()"));
  EXPECT_TRUE(Run(kQuery, "IN ()").hit);
}

TEST_F(PlanCacheTest, ConversionRegistrationInvalidates) {
  RunOutcome before = Run(kQuery);
  EXPECT_FALSE(before.hit);
  ConversionPair phone;
  phone.name = "phone";
  phone.to_universal = "phoneToUniversal";
  phone.from_universal = "phoneFromUniversal";
  phone.cls = ConversionClass::kMultiplicative;
  phone.inline_spec.kind = InlineSpec::Kind::kMultiplicative;
  phone.inline_spec.tenant_fk = "T_currency_key";
  phone.inline_spec.meta_table = "CurrencyTransform";
  phone.inline_spec.meta_key = "CT_currency_key";
  phone.inline_spec.to_col = "CT_to_universal";
  phone.inline_spec.from_col = "CT_from_universal";
  ASSERT_OK(mw_->conversions()->Register(phone));
  RunOutcome after = Run(kQuery);
  EXPECT_FALSE(after.hit);  // conversion epoch moved
  EXPECT_EQ(after.bytes, before.bytes);
  EXPECT_TRUE(Run(kQuery).hit);
}

// Scope is part of the key, not an epoch: changing it selects a different
// entry, and changing back re-hits the old one — no invalidation, two live
// entries.
TEST_F(PlanCacheTest, ScopeSelectsDistinctEntries) {
  RunOutcome own = Run(kQuery);  // default scope
  EXPECT_FALSE(own.hit);
  RunOutcome scoped = Run(kQuery, "IN (0)");
  EXPECT_FALSE(scoped.hit);  // different scope text: different key
  EXPECT_EQ(own.bytes, scoped.bytes);  // same D' = {0} either way
  EXPECT_TRUE(Run(kQuery).hit);
  EXPECT_TRUE(Run(kQuery, "IN (0)").hit);
}

// A conversion-rate refresh is DML on the meta table. The cached plan reads
// rates through a join at execution time (snapshot-pinned per statement), so
// the entry legitimately *survives* — and must serve the new rates, byte-
// identical to a from-scratch session.
TEST_F(PlanCacheTest, RateRefreshServesFreshRatesFromCachedPlan) {
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  const std::string q =
      "SELECT MAX(E_salary) FROM Employees";  // converts tenant 1's salaries
  RunOutcome before = Run(q, "IN (1)");
  EXPECT_FALSE(before.hit);
  ASSERT_OK(db_->Execute(
      "UPDATE CurrencyTransform SET CT_to_universal = 0.25, "
      "CT_from_universal = 4 WHERE CT_currency_key = 1"));
  RunOutcome after = Run(q, "IN (1)");
  EXPECT_TRUE(after.hit);  // plan unchanged: rates live in table data
  EXPECT_NE(after.bytes, before.bytes);  // but the output moved with the rate
  EXPECT_EQ(after.bytes, FreshBytes(q, "IN (1)"));
}

// -- SharedPlanCache unit level: LRU order, eviction, counters --------------

CachedPlans Entry(const std::string& sql) {
  CachedPlans e;
  e.sql = sql;
  e.plans = std::make_shared<std::vector<engine::PreparedPlan>>();
  return e;
}

TEST(SharedPlanCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  SharedPlanCache cache(/*capacity=*/2);
  cache.Insert("a", Entry("SELECT a"));
  cache.Insert("b", Entry("SELECT b"));
  CachedPlans out;
  ASSERT_TRUE(cache.Lookup("a", &out));  // refresh a: b is now LRU
  EXPECT_EQ(out.sql, "SELECT a");
  cache.Insert("c", Entry("SELECT c"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup("a", &out));
  EXPECT_TRUE(cache.Lookup("c", &out));
  EXPECT_FALSE(cache.Lookup("b", &out));  // the stale one went
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SharedPlanCacheTest, ShrinkingCapacityEvictsImmediately) {
  SharedPlanCache cache(/*capacity=*/8);
  for (int i = 0; i < 6; ++i) {
    cache.Insert("k" + std::to_string(i), Entry("q" + std::to_string(i)));
  }
  ASSERT_EQ(cache.size(), 6u);
  cache.set_capacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.capacity(), 2u);
  EXPECT_EQ(cache.evictions(), 4u);
  CachedPlans out;
  EXPECT_TRUE(cache.Lookup("k5", &out));  // most recent survive
  EXPECT_TRUE(cache.Lookup("k4", &out));
  EXPECT_FALSE(cache.Lookup("k0", &out));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SharedPlanCacheTest, InsertRefreshesExistingKey) {
  SharedPlanCache cache(/*capacity=*/2);
  cache.Insert("a", Entry("v1"));
  cache.Insert("b", Entry("SELECT b"));
  cache.Insert("a", Entry("v2"));  // refresh, not duplicate
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert("c", Entry("SELECT c"));  // evicts b (a was refreshed)
  CachedPlans out;
  ASSERT_TRUE(cache.Lookup("a", &out));
  EXPECT_EQ(out.sql, "v2");
  EXPECT_FALSE(cache.Lookup("b", &out));
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
