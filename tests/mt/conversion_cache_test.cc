// The shared dictionary-conversion cache across statements: prepared-query
// re-executions answer repeated toUniversal/fromUniversal lookups from
// memory, and every way a dictionary can change — DML on the meta tables
// (tenant re-registration, rate refresh) or conversion-pair registration —
// moves the cache epoch so no stale value is ever served. Staleness checks
// are byte-parity: after an invalidating event the prepared handle must
// return exactly what a fresh session computes under the new state.
#include <gtest/gtest.h>

#include "mt/mtbase.h"
#include "mt/session.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

class ConversionCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    mw_ = std::make_unique<Middleware>(db_.get());
    mw_->RegisterTenant(0);
    mw_->RegisterTenant(1);
    ASSERT_OK(db_->ExecuteScript(R"(
      CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL);
      CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,
        CT_to_universal DECIMAL(15,6) NOT NULL, CT_from_universal DECIMAL(15,6) NOT NULL);
      INSERT INTO Tenant VALUES (0, 0), (1, 1);
      INSERT INTO CurrencyTransform VALUES (0, 1, 1), (1, 0.5, 2);
      CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
        AS 'SELECT CT_to_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE;
      CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
        AS 'SELECT CT_from_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE;
    )"));
    ConversionPair currency;
    currency.name = "currency";
    currency.to_universal = "currencyToUniversal";
    currency.from_universal = "currencyFromUniversal";
    currency.cls = ConversionClass::kMultiplicative;
    currency.inline_spec.kind = InlineSpec::Kind::kMultiplicative;
    currency.inline_spec.tenant_fk = "T_currency_key";
    currency.inline_spec.meta_table = "CurrencyTransform";
    currency.inline_spec.meta_key = "CT_currency_key";
    currency.inline_spec.to_col = "CT_to_universal";
    currency.inline_spec.from_col = "CT_from_universal";
    ASSERT_OK(mw_->conversions()->Register(currency));

    Session admin(mw_.get(), 0);
    ASSERT_OK(admin.Execute(R"(CREATE TABLE Employees SPECIFIC (
        E_emp_id INTEGER NOT NULL SPECIFIC,
        E_name VARCHAR(25) NOT NULL COMPARABLE,
        E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal))"));
    ASSERT_OK(admin.Execute(
        "INSERT INTO Employees VALUES (0,'Patrick',50000),(1,'Alice',150000)"));
    Session t1(mw_.get(), 1);
    ASSERT_OK(t1.Execute(
        "INSERT INTO Employees VALUES (0,'Allan',160000),(1,'Nancy',400000)"));
    ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  }

  /// A canonical-level cross-tenant session for client 0: the rewritten SQL
  /// keeps the conversion UDF calls (no inlining), so every execution
  /// exercises the caches.
  Session CanonicalSession() {
    Session s(mw_.get(), 0);
    s.set_optimization_level(OptLevel::kCanonical);
    EXPECT_OK(s.SetScope("IN (0, 1)"));
    return s;
  }

  std::string Canon(const engine::ResultSet& rs) {
    return CanonRows(rs.rows);
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<Middleware> mw_;
};

constexpr char kQuery[] = "SELECT E_name, E_salary FROM Employees";

TEST_F(ConversionCacheTest, MiddlewareEnablesSharedCache) {
  EXPECT_TRUE(db_->shared_udf_cache_enabled());
}

TEST_F(ConversionCacheTest, PreparedReExecutionHitsSharedCache) {
  Session s = CanonicalSession();
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK_AND_ASSIGN(auto first, pq.Execute());
  ASSERT_EQ(first.rows.size(), 4u);

  // Re-execution: the per-statement cache starts empty, so without the
  // shared cache every distinct (value, tenant) pair would re-execute the
  // UDF body plan. With it, zero bodies run.
  engine::StatsScope scope(db_->stats());
  ASSERT_OK_AND_ASSIGN(auto second, pq.Execute());
  engine::ExecStats d = scope.Delta();
  EXPECT_GT(d.udf_cache_hits, 0u);
  EXPECT_GT(d.udf_shared_cache_hits, 0u);
  EXPECT_EQ(d.udf_calls, 0u);
  EXPECT_EQ(d.udf_cache_misses, 0u);
  EXPECT_EQ(Canon(first), Canon(second));
}

TEST_F(ConversionCacheTest, UnrelatedDmlDoesNotEvict) {
  Session s = CanonicalSession();
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK(pq.Execute().status());  // warm the shared cache

  // Routine tenant-data writes touch no table any conversion body reads:
  // the dictionary cache must stay warm (only new rows' values miss).
  engine::UdfCacheEpoch before = db_->CurrentUdfCacheEpoch();
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("INSERT INTO Employees VALUES (2,'Zoe',400000)"));
  EXPECT_EQ(db_->CurrentUdfCacheEpoch(), before);

  engine::StatsScope scope(db_->stats());
  ASSERT_OK(pq.Execute().status());
  EXPECT_GT(scope.Delta().udf_shared_cache_hits, 0u);
}

TEST_F(ConversionCacheTest, ThreadBudgetChangeDoesNotEvict) {
  Session s = CanonicalSession();
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK(pq.Execute().status());  // warm the shared cache

  // A planner knob changes plans, not immutable results: the warm
  // dictionary cache must survive (the prepared query itself recompiles,
  // since the engine compilation version is part of its fingerprint).
  mw_->SetMaxThreads(4);
  engine::StatsScope scope(db_->stats());
  ASSERT_OK(pq.Execute().status());
  EXPECT_GT(scope.Delta().udf_shared_cache_hits, 0u);
  EXPECT_EQ(scope.Delta().udf_calls, 0u);
  mw_->SetMaxThreads(1);
}

TEST_F(ConversionCacheTest, RateUpdateEvictsAndReturnsNewValues) {
  Session s = CanonicalSession();
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK_AND_ASSIGN(auto before, pq.Execute());
  ASSERT_OK(pq.Execute().status());  // warm the shared cache

  // Refresh tenant 1's exchange rate: 0.5 -> 0.25 in universal format.
  // Plain DML on the dictionary — no DDL, so the prepared plan itself stays
  // cached; only the conversion results must not.
  engine::UdfCacheEpoch epoch_before = db_->CurrentUdfCacheEpoch();
  ASSERT_OK(db_->Execute(
      "UPDATE CurrencyTransform SET CT_to_universal = 0.25 "
      "WHERE CT_currency_key = 1"));
  EXPECT_NE(db_->CurrentUdfCacheEpoch(), epoch_before);

  engine::StatsScope scope(db_->stats());
  ASSERT_OK_AND_ASSIGN(auto after, pq.Execute());
  engine::ExecStats d = scope.Delta();
  // No stale hits: the epoch moved, so the first lookups re-execute bodies.
  EXPECT_EQ(d.udf_shared_cache_hits, 0u);
  EXPECT_GT(d.udf_calls, 0u);
  EXPECT_NE(Canon(before), Canon(after));

  // Byte parity with a fresh session under the new dictionary state.
  Session fresh = CanonicalSession();
  ASSERT_OK_AND_ASSIGN(auto fresh_rs, fresh.Execute(kQuery));
  EXPECT_EQ(Canon(after), Canon(fresh_rs));

  // Tenant 1's salaries halved in client 0's presentation (0.5 -> 0.25,
  // client rate 1): Allan 160000 * 0.25 = 40000.
  bool found = false;
  for (const Row& r : after.rows) {
    if (r[0].ToString() == "Allan") {
      found = true;
      EXPECT_DOUBLE_EQ(r[1].AsDouble(), 40000.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ConversionCacheTest, TenantReRegistrationEvicts) {
  Session s = CanonicalSession();
  ASSERT_OK_AND_ASSIGN(PreparedQuery pq, s.Prepare(kQuery));
  ASSERT_OK_AND_ASSIGN(auto before, pq.Execute());
  ASSERT_OK(pq.Execute().status());  // warm the shared cache

  // Tenant 1 re-registers under currency 0 (rate 1): its stored values are
  // now already universal.
  ASSERT_OK(db_->Execute(
      "UPDATE Tenant SET T_currency_key = 0 WHERE T_tenant_key = 1"));

  engine::StatsScope scope(db_->stats());
  ASSERT_OK_AND_ASSIGN(auto after, pq.Execute());
  EXPECT_EQ(scope.Delta().udf_shared_cache_hits, 0u);
  EXPECT_NE(Canon(before), Canon(after));
  for (const Row& r : after.rows) {
    if (r[0].ToString() == "Allan") {
      EXPECT_DOUBLE_EQ(r[1].AsDouble(), 160000.0);
    }
  }
}

TEST_F(ConversionCacheTest, PairRegistrationBumpsExternalEpoch) {
  Session s = CanonicalSession();
  ASSERT_OK(s.Execute(kQuery).status());  // warm the shared cache
  ASSERT_GT(db_->shared_udf_cache()->size(), 0u);

  engine::UdfCacheEpoch before = db_->CurrentUdfCacheEpoch();
  ConversionPair temperature;
  temperature.name = "temperature";
  temperature.to_universal = "tempToUniversal";
  temperature.from_universal = "tempFromUniversal";
  temperature.cls = ConversionClass::kLinear;
  ASSERT_OK(mw_->conversions()->Register(temperature));
  engine::UdfCacheEpoch after = db_->CurrentUdfCacheEpoch();
  EXPECT_NE(after, before);
  EXPECT_EQ(after.external, before.external + 1);

  // The raw registry path invalidates too: the Middleware installs an
  // on-register hook, so no caller can bypass the epoch bump.
  ConversionPair weight;
  weight.name = "weight";
  weight.to_universal = "weightToUniversal";
  weight.from_universal = "weightFromUniversal";
  weight.cls = ConversionClass::kMultiplicative;
  ASSERT_OK(mw_->conversions()->Register(weight));
  EXPECT_EQ(db_->CurrentUdfCacheEpoch().external, after.external + 1);

  // The next lookup under the new epoch logically evicts everything.
  engine::StatsScope scope(db_->stats());
  ASSERT_OK(s.Execute(kQuery).status());
  EXPECT_EQ(scope.Delta().udf_shared_cache_hits, 0u);
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
