// Canonical rewrite algorithm tests based on the paper's running example
// (Figure 2) and rewriting listings (Listings 10-12, Appendix A).
#include "mt/rewriter.h"

#include <gtest/gtest.h>

#include "mt/conversion.h"
#include "mt/mt_schema.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto employees = sql::ParseStatement(R"(CREATE TABLE Employees SPECIFIC (
        E_emp_id INTEGER NOT NULL SPECIFIC,
        E_name VARCHAR(25) NOT NULL COMPARABLE,
        E_role_id INTEGER NOT NULL SPECIFIC,
        E_reg_id INTEGER NOT NULL COMPARABLE,
        E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
        E_age INTEGER NOT NULL COMPARABLE))");
    ASSERT_OK(employees);
    ASSERT_OK(schema_.RegisterTable(*employees.value().create_table));
    auto roles = sql::ParseStatement(R"(CREATE TABLE Roles SPECIFIC (
        R_role_id INTEGER NOT NULL SPECIFIC,
        R_name VARCHAR(25) NOT NULL COMPARABLE))");
    ASSERT_OK(roles);
    ASSERT_OK(schema_.RegisterTable(*roles.value().create_table));
    auto regions = sql::ParseStatement(R"(CREATE TABLE Regions (
        Re_reg_id INTEGER NOT NULL,
        Re_name VARCHAR(25) NOT NULL))");
    ASSERT_OK(regions);
    ASSERT_OK(schema_.RegisterTable(*regions.value().create_table));
    ConversionPair currency;
    currency.name = "currency";
    currency.to_universal = "currencyToUniversal";
    currency.from_universal = "currencyFromUniversal";
    currency.cls = ConversionClass::kMultiplicative;
    ASSERT_OK(conversions_.Register(currency));
  }

  std::string Rewrite(const std::string& query, int64_t client = 0,
                      std::vector<int64_t> dataset = {0, 1},
                      RewriteOptions opts = {}) {
    Rewriter rw(&schema_, &conversions_, client, std::move(dataset), opts);
    auto sel = sql::ParseSelect(query);
    EXPECT_TRUE(sel.ok()) << sel.status().ToString();
    auto out = rw.RewriteQuery(*sel.value());
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? sql::PrintSelect(*out.value()) : "";
  }

  Status RewriteStatus(const std::string& query) {
    Rewriter rw(&schema_, &conversions_, 0, {0, 1}, {});
    auto sel = sql::ParseSelect(query);
    EXPECT_TRUE(sel.ok());
    return rw.RewriteQuery(*sel.value()).status();
  }

  MTSchema schema_;
  ConversionRegistry conversions_;
};

TEST_F(RewriterTest, DFilterAdded) {
  std::string out = Rewrite("SELECT E_age FROM Employees");
  EXPECT_NE(out.find("Employees.ttid IN (0, 1)"), std::string::npos) << out;
}

TEST_F(RewriterTest, GlobalTableGetsNoDFilter) {
  std::string out = Rewrite("SELECT Re_name FROM Regions");
  EXPECT_EQ(out.find("ttid"), std::string::npos) << out;
}

TEST_F(RewriterTest, ConversionWrappingInSelect) {
  // Paper Listing 10, line 3.
  std::string out = Rewrite("SELECT E_salary FROM Employees");
  EXPECT_NE(out.find("currencyFromUniversal(currencyToUniversal(E_salary, "
                     "Employees.ttid), 0) AS E_salary"),
            std::string::npos)
      << out;
}

TEST_F(RewriterTest, ConversionInsideAggregate) {
  // Paper Listing 10, line 6.
  std::string out = Rewrite("SELECT AVG(E_salary) AS avg_sal FROM Employees");
  EXPECT_NE(out.find("AVG(currencyFromUniversal(currencyToUniversal("
                     "E_salary, Employees.ttid), 0))"),
            std::string::npos)
      << out;
}

TEST_F(RewriterTest, StarExpansionHidesTtid) {
  // Paper Listing 10, line 9.
  std::string out = Rewrite("SELECT * FROM Employees");
  EXPECT_EQ(out.find("SELECT Employees.ttid"), std::string::npos) << out;
  EXPECT_NE(out.find("E_emp_id"), std::string::npos);
  EXPECT_NE(out.find("E_age"), std::string::npos);
  // ttid still appears in the D-filter, but not in the projection.
  EXPECT_NE(out.find("WHERE Employees.ttid IN"), std::string::npos) << out;
}

TEST_F(RewriterTest, TenantSpecificJoinGetsTtidPredicate) {
  // Paper Listing 11, lines 8-9.
  std::string out = Rewrite(
      "SELECT E_name FROM Employees, Roles WHERE E_role_id = R_role_id");
  EXPECT_NE(out.find("E_role_id = R_role_id AND Employees.ttid = Roles.ttid"),
            std::string::npos)
      << out;
}

TEST_F(RewriterTest, ComparableSelfJoinNeedsNoTtid) {
  // Joining on age alone is fine (intro example: same-age employees of
  // different tenants are genuinely the same age).
  std::string out = Rewrite(
      "SELECT E1.E_name FROM Employees E1, Employees E2 WHERE E1.E_age = "
      "E2.E_age");
  EXPECT_EQ(out.find("E1.ttid = E2.ttid"), std::string::npos) << out;
}

TEST_F(RewriterTest, TenantSpecificSameAliasNeedsNoTtid) {
  std::string out =
      Rewrite("SELECT E_name FROM Employees WHERE E_role_id = E_emp_id");
  EXPECT_EQ(out.find("Employees.ttid = Employees.ttid"), std::string::npos)
      << out;
}

TEST_F(RewriterTest, ComparisonWithConstantInClientFormat) {
  // Paper Listing 11, lines 2-3: the attribute is converted, the constant is
  // already in C's format.
  std::string out =
      Rewrite("SELECT E_name FROM Employees WHERE E_salary > 50000");
  EXPECT_NE(out.find("currencyFromUniversal(currencyToUniversal(E_salary, "
                     "Employees.ttid), 0) > 50000"),
            std::string::npos)
      << out;
}

TEST_F(RewriterTest, RejectsTenantSpecificVsComparable) {
  // Paper section 2.4.2. The refusal carries a machine-readable code prefix
  // so tools (and the audit suite) can match on it.
  auto st = RewriteStatus(
      "SELECT E_name FROM Employees WHERE E_role_id = E_age");
  EXPECT_EQ(st.code(), StatusCode::kRejected);
  EXPECT_NE(st.ToString().find("INCOMPARABLE_ATTRIBUTES: "),
            std::string::npos)
      << st.ToString();
}

TEST_F(RewriterTest, RejectsTenantSpecificVsConvertible) {
  auto st = RewriteStatus(
      "SELECT E_name FROM Employees WHERE E_role_id = E_salary");
  EXPECT_EQ(st.code(), StatusCode::kRejected);
  EXPECT_NE(st.ToString().find("INCOMPARABLE_ATTRIBUTES: "),
            std::string::npos)
      << st.ToString();
}

TEST_F(RewriterTest, RejectsTenantSpecificVsNonSpecificSubquery) {
  // A tenant-specific needle tested against a sub-query producing a
  // comparable attribute gets its own code.
  auto st = RewriteStatus(
      "SELECT E_name FROM Employees WHERE E_role_id IN "
      "(SELECT E_age FROM Employees)");
  EXPECT_EQ(st.code(), StatusCode::kRejected);
  EXPECT_NE(st.ToString().find("INCOMPARABLE_SUBQUERY: "), std::string::npos)
      << st.ToString();
}

TEST_F(RewriterTest, AllowsTenantSpecificVsConstant) {
  EXPECT_OK(RewriteStatus("SELECT E_name FROM Employees WHERE E_role_id = 2"));
}

TEST_F(RewriterTest, SubqueriesGetDFiltersToo) {
  std::string out = Rewrite(
      "SELECT E_name FROM Employees WHERE E_salary > (SELECT AVG(E2.E_salary) "
      "FROM Employees E2)");
  // Both levels carry a D-filter.
  EXPECT_NE(out.find("Employees.ttid IN (0, 1)"), std::string::npos) << out;
  EXPECT_NE(out.find("E2.ttid IN (0, 1)"), std::string::npos) << out;
}

TEST_F(RewriterTest, CorrelatedTenantSpecificComparisonPairsTtids) {
  std::string out = Rewrite(
      "SELECT E_name FROM Employees WHERE EXISTS (SELECT * FROM Roles WHERE "
      "R_role_id = E_role_id)");
  EXPECT_NE(out.find("Roles.ttid = Employees.ttid"), std::string::npos) << out;
}

TEST_F(RewriterTest, InSubqueryOnTenantSpecificPairsTuples) {
  std::string out = Rewrite(
      "SELECT E_name FROM Employees WHERE E_role_id IN (SELECT R_role_id "
      "FROM Roles WHERE R_name = 'postdoc')");
  EXPECT_NE(out.find("(E_role_id, Employees.ttid) IN (SELECT R_role_id"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("Roles.ttid FROM Roles"), std::string::npos) << out;
}

TEST_F(RewriterTest, InSubqueryWithGroupByExtendsGrouping) {
  std::string out = Rewrite(
      "SELECT E_name FROM Employees WHERE E_role_id IN (SELECT R_role_id "
      "FROM Roles GROUP BY R_role_id)");
  EXPECT_NE(out.find("GROUP BY R_role_id, Roles.ttid"), std::string::npos)
      << out;
}

TEST_F(RewriterTest, O1DropsDFilterWhenAllTenants) {
  RewriteOptions opts;
  opts.drop_dfilters = true;
  std::string out = Rewrite("SELECT E_age FROM Employees", 0, {0, 1}, opts);
  EXPECT_EQ(out.find("IN (0, 1)"), std::string::npos) << out;
}

TEST_F(RewriterTest, O1DropsTtidJoinForSingleTenant) {
  RewriteOptions opts;
  opts.drop_ttid_joins = true;
  std::string out = Rewrite(
      "SELECT E_name FROM Employees, Roles WHERE E_role_id = R_role_id", 0,
      {2}, opts);
  EXPECT_EQ(out.find("Employees.ttid = Roles.ttid"), std::string::npos) << out;
  EXPECT_NE(out.find("Employees.ttid IN (2)"), std::string::npos) << out;
}

TEST_F(RewriterTest, O1DropsConversionsForOwnData) {
  // Paper Listing 13, lines 8-9.
  RewriteOptions opts;
  opts.drop_conversions = true;
  std::string out = Rewrite("SELECT E_salary FROM Employees", 0, {0}, opts);
  EXPECT_EQ(out.find("currencyFromUniversal"), std::string::npos) << out;
}

TEST_F(RewriterTest, GroupByAndHavingRewritten) {
  std::string out = Rewrite(
      "SELECT E_salary, COUNT(*) FROM Employees GROUP BY E_salary HAVING "
      "COUNT(*) > 1");
  // The group-by expression matches the converted select item.
  EXPECT_NE(out.find("GROUP BY currencyFromUniversal(currencyToUniversal("
                     "E_salary, Employees.ttid), 0)"),
            std::string::npos)
      << out;
}

TEST_F(RewriterTest, DerivedTableOutputsAreClientFormat) {
  // The invariant: sub-query outputs are already converted, so the outer
  // level must not wrap them again.
  std::string out = Rewrite(
      "SELECT sal FROM (SELECT E_salary AS sal FROM Employees) AS X WHERE "
      "sal > 100");
  size_t first = out.find("currencyFromUniversal");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find("currencyFromUniversal", first + 1), std::string::npos)
      << out;
}

TEST_F(RewriterTest, LowerCreateTableAddsTtid) {
  auto stmt = sql::ParseStatement(R"(CREATE TABLE Projects SPECIFIC (
      P_id INTEGER NOT NULL SPECIFIC,
      P_budget DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
      CONSTRAINT pk_p PRIMARY KEY (P_id),
      CONSTRAINT fk_p FOREIGN KEY (P_id) REFERENCES Employees (E_emp_id)))");
  ASSERT_OK(stmt);
  Rewriter rw(&schema_, &conversions_, 0, {0}, {});
  ASSERT_OK_AND_ASSIGN(auto lowered,
                       rw.LowerCreateTable(*stmt.value().create_table));
  ASSERT_EQ(lowered.columns.size(), 3u);
  EXPECT_EQ(lowered.columns[0].name, "ttid");
  // PK extended with ttid; FK to a tenant-specific table pairs ttids
  // (paper Appendix A.1).
  EXPECT_EQ(lowered.constraints[0].columns.front(), "ttid");
  EXPECT_EQ(lowered.constraints[1].columns.front(), "ttid");
  EXPECT_EQ(lowered.constraints[1].ref_columns.front(), "ttid");
}

TEST_F(RewriterTest, InsertExpandsPerTenantWithConversions) {
  auto stmt = sql::ParseStatement(
      "INSERT INTO Employees VALUES (7, 'Zoe', 1, 3, 90000, 31)");
  ASSERT_OK(stmt);
  Rewriter rw(&schema_, &conversions_, 0, {0, 1}, {});
  ASSERT_OK_AND_ASSIGN(auto stmts, rw.RewriteStatement(*stmt));
  ASSERT_EQ(stmts.size(), 2u);  // one INSERT per tenant in D
  std::string second = sql::PrintStmt(stmts[1]);
  // Values for tenant 1 are converted from C=0's format into tenant 1's.
  EXPECT_NE(second.find("currencyFromUniversal(currencyToUniversal(90000, 0), 1)"),
            std::string::npos)
      << second;
  EXPECT_NE(second.find("ttid"), std::string::npos);
  // Own-tenant insert keeps the raw value.
  std::string first = sql::PrintStmt(stmts[0]);
  EXPECT_EQ(first.find("currencyFromUniversal"), std::string::npos) << first;
}

TEST_F(RewriterTest, UpdateConvertsAssignmentsPerRowOwner) {
  auto stmt = sql::ParseStatement(
      "UPDATE Employees SET E_salary = 120000 WHERE E_age > 40");
  ASSERT_OK(stmt);
  Rewriter rw(&schema_, &conversions_, 0, {0, 1}, {});
  ASSERT_OK_AND_ASSIGN(auto stmts, rw.RewriteStatement(*stmt));
  ASSERT_EQ(stmts.size(), 1u);
  std::string out = sql::PrintStmt(stmts[0]);
  EXPECT_NE(out.find("currencyFromUniversal(currencyToUniversal(120000, 0), "
                     "Employees.ttid)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("Employees.ttid IN (0, 1)"), std::string::npos) << out;
}

TEST_F(RewriterTest, DeleteGetsDFilter) {
  auto stmt = sql::ParseStatement("DELETE FROM Roles WHERE R_name = 'intern'");
  ASSERT_OK(stmt);
  Rewriter rw(&schema_, &conversions_, 1, {1}, {});
  ASSERT_OK_AND_ASSIGN(auto stmts, rw.RewriteStatement(*stmt));
  std::string out = sql::PrintStmt(stmts[0]);
  EXPECT_NE(out.find("Roles.ttid IN (1)"), std::string::npos) << out;
}

TEST_F(RewriterTest, RewrittenQueryReparses) {
  std::string out = Rewrite(
      "SELECT E_name, AVG(E_salary) AS a FROM Employees, Roles WHERE "
      "E_role_id = R_role_id AND E_salary > 100 GROUP BY E_name ORDER BY a "
      "DESC LIMIT 5");
  EXPECT_OK(sql::ParseStatement(out));
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
