#include "mt/scope.h"

#include <gtest/gtest.h>

#include "sql/printer.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

TEST(ScopeTest, DefaultScope) {
  Scope s = Scope::Default();
  EXPECT_EQ(s.kind, Scope::Kind::kDefault);
}

TEST(ScopeTest, SimpleInList) {
  ASSERT_OK_AND_ASSIGN(Scope s, Scope::Parse("IN (1,3,42)"));
  EXPECT_EQ(s.kind, Scope::Kind::kSimple);
  EXPECT_EQ(s.ids, (std::vector<int64_t>{1, 3, 42}));
}

TEST(ScopeTest, EmptyInListMeansAll) {
  ASSERT_OK_AND_ASSIGN(Scope s, Scope::Parse("IN ()"));
  EXPECT_EQ(s.kind, Scope::Kind::kSimple);
  EXPECT_TRUE(s.ids.empty());
}

TEST(ScopeTest, CaseInsensitiveKeyword) {
  ASSERT_OK_AND_ASSIGN(Scope s, Scope::Parse("in (7)"));
  EXPECT_EQ(s.ids, (std::vector<int64_t>{7}));
}

TEST(ScopeTest, ComplexScope) {
  ASSERT_OK_AND_ASSIGN(Scope s,
                       Scope::Parse("FROM Employees WHERE E_salary > 180000"));
  EXPECT_EQ(s.kind, Scope::Kind::kComplex);
  EXPECT_EQ(s.table, "Employees");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(sql::PrintExpr(*s.where), "E_salary > 180000");
}

TEST(ScopeTest, ComplexScopeWithoutWhere) {
  ASSERT_OK_AND_ASSIGN(Scope s, Scope::Parse("FROM Employees"));
  EXPECT_EQ(s.kind, Scope::Kind::kComplex);
  EXPECT_EQ(s.where, nullptr);
}

TEST(ScopeTest, Errors) {
  EXPECT_FALSE(Scope::Parse("").ok());
  EXPECT_FALSE(Scope::Parse("BOGUS").ok());
  EXPECT_FALSE(Scope::Parse("IN (a,b)").ok());
  EXPECT_FALSE(Scope::Parse("IN (1, 2").ok());
  // Multi-table complex scopes are not supported (documented).
  EXPECT_FALSE(Scope::Parse("FROM a, b WHERE x = 1").ok());
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
