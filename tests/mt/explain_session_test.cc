// Session::Explain shows how the rewritten query executes — D-filters as
// scan filters, ttid join keys, and o4's conversion meta-table joins.
#include <gtest/gtest.h>

#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

class ExplainSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mth::MthConfig cfg;
    cfg.scale_factor = 0.001;
    cfg.num_tenants = 3;
    auto env = mth::SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                                     /*with_baseline=*/false);
    ASSERT_OK(env);
    env_ = std::move(env).value();
    session_ = std::make_unique<Session>(env_->middleware.get(), 1);
    ASSERT_OK(session_->Execute("SET SCOPE = \"IN (1, 2)\"").status());
  }

  std::unique_ptr<mth::MthEnvironment> env_;
  std::unique_ptr<Session> session_;
};

TEST_F(ExplainSessionTest, CanonicalShowsUdfWork) {
  session_->set_optimization_level(OptLevel::kCanonical);
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      session_->Explain("SELECT SUM(o_totalprice) FROM orders"));
  // Conversions appear as UDF work in the projection feeding the aggregate.
  EXPECT_NE(plan.find("udf"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Scan orders (filtered)"), std::string::npos) << plan;
}

TEST_F(ExplainSessionTest, O4ShowsMetaTableJoins) {
  session_->set_optimization_level(OptLevel::kO4);
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      session_->Explain("SELECT SUM(o_totalprice) FROM orders"));
  EXPECT_EQ(plan.find("udf"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Scan CurrencyTransform"), std::string::npos) << plan;
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
}

TEST_F(ExplainSessionTest, TenantSpecificJoinShowsTwoKeys) {
  session_->set_optimization_level(OptLevel::kO1);
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      session_->Explain("SELECT COUNT(*) FROM customer, orders WHERE "
                        "c_custkey = o_custkey"));
  // Key + the injected ttid pairing = 2 join keys.
  EXPECT_NE(plan.find("HashJoin INNER (2 keys)"), std::string::npos) << plan;
}

TEST_F(ExplainSessionTest, ExistsBecomesSemiJoinAfterRewrite) {
  session_->set_optimization_level(OptLevel::kO1);
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      session_->Explain("SELECT COUNT(*) FROM orders WHERE EXISTS (SELECT * "
                        "FROM lineitem WHERE l_orderkey = o_orderkey)"));
  EXPECT_NE(plan.find("HashJoin SEMI (2 keys)"), std::string::npos) << plan;
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
