// Session::Explain shows how the rewritten query executes — D-filters as
// scan filters, ttid join keys, and o4's conversion meta-table joins.
#include <gtest/gtest.h>

#include "mth/runner.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

class ExplainSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mth::MthConfig cfg;
    cfg.scale_factor = 0.001;
    cfg.num_tenants = 3;
    auto env = mth::SetupEnvironment(cfg, engine::DbmsProfile::kPostgres,
                                     /*with_baseline=*/false);
    ASSERT_OK(env);
    env_ = std::move(env).value();
    session_ = std::make_unique<Session>(env_->middleware.get(), 1);
    ASSERT_OK(session_->Execute("SET SCOPE = \"IN (1, 2)\"").status());
  }

  std::unique_ptr<mth::MthEnvironment> env_;
  std::unique_ptr<Session> session_;
};

TEST_F(ExplainSessionTest, CanonicalShowsUdfWork) {
  session_->set_optimization_level(OptLevel::kCanonical);
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      session_->Explain("SELECT SUM(o_totalprice) FROM orders"));
  // Conversions appear as UDF work in the projection feeding the aggregate.
  EXPECT_NE(plan.find("udf"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Scan orders (filtered)"), std::string::npos) << plan;
}

TEST_F(ExplainSessionTest, O4ShowsMetaTableJoins) {
  session_->set_optimization_level(OptLevel::kO4);
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      session_->Explain("SELECT SUM(o_totalprice) FROM orders"));
  EXPECT_EQ(plan.find("udf"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Scan CurrencyTransform"), std::string::npos) << plan;
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
}

TEST_F(ExplainSessionTest, TenantSpecificJoinShowsTwoKeys) {
  session_->set_optimization_level(OptLevel::kO1);
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      session_->Explain("SELECT COUNT(*) FROM customer, orders WHERE "
                        "c_custkey = o_custkey"));
  // Key + the injected ttid pairing = 2 join keys.
  EXPECT_NE(plan.find("HashJoin INNER (2 keys)"), std::string::npos) << plan;
}

TEST_F(ExplainSessionTest, ExistsBecomesSemiJoinAfterRewrite) {
  session_->set_optimization_level(OptLevel::kO1);
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      session_->Explain("SELECT COUNT(*) FROM orders WHERE EXISTS (SELECT * "
                        "FROM lineitem WHERE l_orderkey = o_orderkey)"));
  EXPECT_NE(plan.find("HashJoin SEMI (2 keys)"), std::string::npos) << plan;
}

TEST_F(ExplainSessionTest, VerifyAndAuditFootersComposeInFixedOrder) {
  const std::string q = "SELECT SUM(o_totalprice) FROM orders";
  ExplainOptions opts;
  opts.verify = true;
  opts.audit = true;
  ASSERT_OK_AND_ASSIGN(std::string plan, session_->Explain(q, opts));
  size_t verify_pos = plan.find("[verify: ");
  size_t audit_pos = plan.find("[audit: ");
  ASSERT_NE(verify_pos, std::string::npos) << plan;
  ASSERT_NE(audit_pos, std::string::npos) << plan;
  // Deterministic footer order: the verify line always precedes the audit
  // line (docs/explain.md).
  EXPECT_LT(verify_pos, audit_pos) << plan;

  // Each flag acts independently.
  opts.verify = false;
  ASSERT_OK_AND_ASSIGN(plan, session_->Explain(q, opts));
  EXPECT_EQ(plan.find("[verify: "), std::string::npos) << plan;
  EXPECT_NE(plan.find("[audit: "), std::string::npos) << plan;
  opts.verify = true;
  opts.audit = false;
  ASSERT_OK_AND_ASSIGN(plan, session_->Explain(q, opts));
  EXPECT_NE(plan.find("[verify: "), std::string::npos) << plan;
  EXPECT_EQ(plan.find("[audit: "), std::string::npos) << plan;
}

// EXPLAIN (VERIFY, AUDIT, ANALYZE): all three footers compose, always in
// the fixed order verify -> analyze -> audit, at both ends of the rewrite
// spectrum. ANALYZE also annotates every operator with [actual: ...]; the
// other flags never do.
TEST_F(ExplainSessionTest, AllThreeFootersComposeInFixedOrder) {
  const std::string q = "SELECT SUM(o_totalprice) FROM orders";
  for (OptLevel level : {OptLevel::kCanonical, OptLevel::kO4}) {
    session_->set_optimization_level(level);
    ExplainOptions opts;
    opts.verify = true;
    opts.audit = true;
    opts.analyze = true;
    ASSERT_OK_AND_ASSIGN(std::string plan, session_->Explain(q, opts));
    const size_t verify_pos = plan.find("[verify: ");
    const size_t analyze_pos = plan.find("[analyze: ");
    const size_t audit_pos = plan.find("[audit: ");
    ASSERT_NE(verify_pos, std::string::npos) << plan;
    ASSERT_NE(analyze_pos, std::string::npos) << plan;
    ASSERT_NE(audit_pos, std::string::npos) << plan;
    EXPECT_LT(verify_pos, analyze_pos) << plan;
    EXPECT_LT(analyze_pos, audit_pos) << plan;
    EXPECT_NE(plan.find("[actual:"), std::string::npos) << plan;

    // Without ANALYZE the plan stays estimate-only: no actuals, no footer.
    opts.analyze = false;
    ASSERT_OK_AND_ASSIGN(plan, session_->Explain(q, opts));
    EXPECT_EQ(plan.find("[actual:"), std::string::npos) << plan;
    EXPECT_EQ(plan.find("[analyze: "), std::string::npos) << plan;
  }
}

// ANALYZE alone hands back the instrumented run's rows, matching a plain
// execution byte for byte.
TEST_F(ExplainSessionTest, AnalyzeReturnsExecutedRows) {
  const std::string q = "SELECT SUM(o_totalprice) FROM orders";
  session_->set_optimization_level(OptLevel::kO2);
  ASSERT_OK_AND_ASSIGN(engine::ResultSet plain, session_->Execute(q));
  ExplainOptions opts;
  opts.analyze = true;
  engine::ResultSet analyzed;
  ASSERT_OK(session_->Explain(q, opts, &analyzed));
  EXPECT_EQ(CanonRows(analyzed.rows), CanonRows(plain.rows));
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
