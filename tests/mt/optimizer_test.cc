// Optimization pass tests (paper section 4, Listings 13-17).
#include "mt/optimizer.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ConversionPair currency;
    currency.name = "currency";
    currency.to_universal = "cToU";
    currency.from_universal = "cFromU";
    currency.cls = ConversionClass::kMultiplicative;
    currency.inline_spec.kind = InlineSpec::Kind::kMultiplicative;
    currency.inline_spec.tenant_fk = "T_currency_key";
    currency.inline_spec.meta_table = "CurrencyTransform";
    currency.inline_spec.meta_key = "CT_currency_key";
    currency.inline_spec.to_col = "CT_to_universal";
    currency.inline_spec.from_col = "CT_from_universal";
    ASSERT_OK(registry_.Register(currency));
    ConversionPair phone;
    phone.name = "phone";
    phone.to_universal = "pToU";
    phone.from_universal = "pFromU";
    phone.cls = ConversionClass::kEqualityOnly;
    phone.inline_spec.kind = InlineSpec::Kind::kPrefix;
    phone.inline_spec.tenant_fk = "T_phone_prefix_key";
    phone.inline_spec.meta_table = "PhoneTransform";
    phone.inline_spec.meta_key = "PT_phone_prefix_key";
    phone.inline_spec.to_col = "PT_prefix";
    phone.inline_spec.from_col = "PT_prefix";
    ASSERT_OK(registry_.Register(phone));
    ConversionPair linear;
    linear.name = "temperature";
    linear.to_universal = "tToU";
    linear.from_universal = "tFromU";
    linear.cls = ConversionClass::kLinear;
    ASSERT_OK(registry_.Register(linear));
  }

  std::string Optimize(const std::string& query, OptLevel level) {
    auto sel = sql::ParseSelect(query);
    EXPECT_TRUE(sel.ok()) << sel.status().ToString();
    Optimizer opt(&registry_, /*client=*/0);
    EXPECT_OK(opt.Optimize(sel.value().get(), level));
    return sql::PrintSelect(*sel.value());
  }

  ConversionRegistry registry_;
};

// -- o2: conversion push-up ---------------------------------------------------

TEST_F(OptimizerTest, O2ComparesInUniversalFormat) {
  // Paper Listing 14: fromU stripped from both sides of the comparison.
  std::string out = Optimize(
      "SELECT 1 FROM E WHERE cFromU(cToU(E1.sal, E1.ttid), 0) > "
      "cFromU(cToU(E2.sal, E2.ttid), 0)",
      OptLevel::kO2);
  EXPECT_NE(out.find("cToU(E1.sal, E1.ttid) > cToU(E2.sal, E2.ttid)"),
            std::string::npos)
      << out;
}

TEST_F(OptimizerTest, O2SameOwnerComparesRaw) {
  std::string out = Optimize(
      "SELECT 1 FROM E WHERE cFromU(cToU(E1.sal, E1.ttid), 0) = "
      "cFromU(cToU(E1.bonus, E1.ttid), 0)",
      OptLevel::kO2);
  EXPECT_NE(out.find("E1.sal = E1.bonus"), std::string::npos) << out;
}

TEST_F(OptimizerTest, O2ConvertsConstantInsteadOfAttribute) {
  // Paper Listing 15: the constant is converted into the row owner's format.
  std::string out = Optimize(
      "SELECT 1 FROM E WHERE cFromU(cToU(sal, E.ttid), 0) > 100000",
      OptLevel::kO2);
  EXPECT_NE(out.find("sal > cFromU(cToU(100000, 0), E.ttid)"),
            std::string::npos)
      << out;
}

TEST_F(OptimizerTest, O2EqualityOnlyPairNotUsedForOrderComparison) {
  // Phone conversion is only equality-preserving: '<' must keep the client
  // conversions (Table 2 reasoning).
  std::string out = Optimize(
      "SELECT 1 FROM E WHERE pFromU(pToU(phone, E.ttid), 0) < '13'",
      OptLevel::kO2);
  EXPECT_NE(out.find("pFromU(pToU(phone, E.ttid), 0) < '13'"),
            std::string::npos)
      << out;
  // ... but '=' is fine.
  out = Optimize("SELECT 1 FROM E WHERE pFromU(pToU(phone, E.ttid), 0) = '13'",
                 OptLevel::kO2);
  EXPECT_NE(out.find("phone = pFromU(pToU('13', 0), E.ttid)"),
            std::string::npos)
      << out;
}

TEST_F(OptimizerTest, O2HandlesInListAndBetween) {
  std::string out = Optimize(
      "SELECT 1 FROM E WHERE cFromU(cToU(sal, E.ttid), 0) IN (1, 2)",
      OptLevel::kO2);
  EXPECT_NE(out.find("sal IN (cFromU(cToU(1, 0), E.ttid), "
                     "cFromU(cToU(2, 0), E.ttid))"),
            std::string::npos)
      << out;
  out = Optimize(
      "SELECT 1 FROM E WHERE cFromU(cToU(sal, E.ttid), 0) BETWEEN 1 AND 2",
      OptLevel::kO2);
  EXPECT_NE(out.find("sal BETWEEN cFromU(cToU(1, 0), E.ttid) AND "
                     "cFromU(cToU(2, 0), E.ttid)"),
            std::string::npos)
      << out;
}

TEST_F(OptimizerTest, O2LeavesNonConstantSidesAlone) {
  std::string out = Optimize(
      "SELECT 1 FROM E WHERE cFromU(cToU(sal, E.ttid), 0) > E.other",
      OptLevel::kO2);
  EXPECT_NE(out.find("cFromU(cToU(sal, E.ttid), 0) > E.other"),
            std::string::npos)
      << out;
}

// -- o3: aggregation distribution ---------------------------------------------

TEST_F(OptimizerTest, O3DistributesSum) {
  // Paper Listing 16.
  std::string out = Optimize(
      "SELECT SUM(cFromU(cToU(sal, E.ttid), 0)) AS sum_sal FROM E",
      OptLevel::kO3);
  EXPECT_NE(out.find("cToU(SUM(sal), E.ttid)"), std::string::npos) << out;
  EXPECT_NE(out.find("GROUP BY E.ttid"), std::string::npos) << out;
  EXPECT_NE(out.find("cFromU(SUM("), std::string::npos) << out;
}

TEST_F(OptimizerTest, O3DistributesAvgAsSumAndCount) {
  std::string out = Optimize(
      "SELECT AVG(cFromU(cToU(sal, E.ttid), 0)) FROM E", OptLevel::kO3);
  EXPECT_NE(out.find("cToU(SUM(sal), E.ttid)"), std::string::npos) << out;
  EXPECT_NE(out.find("COUNT(sal)"), std::string::npos) << out;
}

TEST_F(OptimizerTest, O3DistributesProductExpressions) {
  // The Q1/Q6 shape: SUM over converted-attribute products.
  std::string out = Optimize(
      "SELECT SUM(cFromU(cToU(price, L.ttid), 0) * (1 - disc)) FROM L",
      OptLevel::kO3);
  EXPECT_NE(out.find("cToU(SUM(price * (1 - disc)), L.ttid)"),
            std::string::npos)
      << out;
}

TEST_F(OptimizerTest, O3DistributesCaseWithZeroBranch) {
  // The Q14 shape: CASE ... THEN converted ELSE 0 END.
  std::string out = Optimize(
      "SELECT SUM(CASE WHEN t LIKE 'PROMO%' THEN cFromU(cToU(p, L.ttid), 0) "
      "ELSE 0 END) FROM L",
      OptLevel::kO3);
  EXPECT_NE(out.find("GROUP BY L.ttid"), std::string::npos) << out;
}

TEST_F(OptimizerTest, O3KeepsGroupKeysInBothStages) {
  std::string out = Optimize(
      "SELECT flag, SUM(cFromU(cToU(sal, E.ttid), 0)) FROM E GROUP BY flag "
      "ORDER BY flag",
      OptLevel::kO3);
  EXPECT_NE(out.find("GROUP BY flag, E.ttid"), std::string::npos) << out;
  EXPECT_NE(out.find("GROUP BY __g0"), std::string::npos) << out;
}

TEST_F(OptimizerTest, O3SkipsEqualityOnlyPairs) {
  // Phone conversions do not distribute (paper Table 2).
  std::string before =
      "SELECT MIN(pFromU(pToU(phone, E.ttid), 0)) FROM E";
  std::string out = Optimize(before, OptLevel::kO3);
  EXPECT_EQ(out.find("GROUP BY E.ttid"), std::string::npos) << out;
}

TEST_F(OptimizerTest, O3LinearPairUsesWeightedConstruction) {
  // Appendix B: SUM via per-tenant AVG * COUNT.
  std::string out = Optimize(
      "SELECT SUM(tFromU(tToU(temp, E.ttid), 0)) FROM E", OptLevel::kO3);
  EXPECT_NE(out.find("tToU(AVG(temp), E.ttid)"), std::string::npos) << out;
  EXPECT_NE(out.find("COUNT(temp)"), std::string::npos) << out;
  EXPECT_NE(out.find("*"), std::string::npos) << out;
}

TEST_F(OptimizerTest, O3LinearPairDoesNotDistributeProducts) {
  // fromU(a*x+b) * k != fromU((x*k) scaled): products block linear pairs.
  std::string out = Optimize(
      "SELECT SUM(tFromU(tToU(temp, E.ttid), 0) * 2) FROM E", OptLevel::kO3);
  EXPECT_EQ(out.find("GROUP BY E.ttid"), std::string::npos) << out;
}

TEST_F(OptimizerTest, O3SkipsDistinctAggregates) {
  std::string out = Optimize(
      "SELECT COUNT(DISTINCT cFromU(cToU(sal, E.ttid), 0)) FROM E",
      OptLevel::kO3);
  EXPECT_EQ(out.find("GROUP BY E.ttid"), std::string::npos) << out;
}

TEST_F(OptimizerTest, O3SkipsMixedTtidSources) {
  std::string out = Optimize(
      "SELECT SUM(cFromU(cToU(a, E1.ttid), 0)), SUM(cFromU(cToU(b, E2.ttid), "
      "0)) FROM E1, E2",
      OptLevel::kO3);
  EXPECT_EQ(out.find("__part"), std::string::npos) << out;
}

TEST_F(OptimizerTest, O3CountStarDistributesAsSumOfCounts) {
  std::string out = Optimize(
      "SELECT COUNT(*), SUM(cFromU(cToU(sal, E.ttid), 0)) FROM E",
      OptLevel::kO3);
  EXPECT_NE(out.find("SUM(__a0)"), std::string::npos) << out;
  EXPECT_NE(out.find("COUNT(*)"), std::string::npos) << out;
}

// -- o4: inlining ---------------------------------------------------------------

TEST_F(OptimizerTest, O4InlinesCurrencyAsJoin) {
  // Paper Listing 17.
  std::string out = Optimize(
      "SELECT cFromU(cToU(sal, E.ttid), 0) AS sal FROM E", OptLevel::kInlineOnly);
  EXPECT_NE(out.find("CurrencyTransform"), std::string::npos) << out;
  EXPECT_NE(out.find("T_tenant_key = E.ttid"), std::string::npos) << out;
  EXPECT_NE(out.find("CT_to_universal"), std::string::npos) << out;
  // The client-side conversion becomes an uncorrelated scalar sub-query.
  EXPECT_NE(out.find("SELECT CT_from_universal FROM Tenant"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("cToU("), std::string::npos) << out;
}

TEST_F(OptimizerTest, O4ReusesJoinForSameOwner) {
  std::string out = Optimize(
      "SELECT cToU(a, E.ttid), cToU(b, E.ttid) FROM E", OptLevel::kInlineOnly);
  // One Tenant/CurrencyTransform join pair, not two.
  size_t first = out.find("CurrencyTransform");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find("CurrencyTransform", first + 1), std::string::npos) << out;
}

TEST_F(OptimizerTest, O4InlinesPhoneAsStringOps) {
  std::string out = Optimize(
      "SELECT pToU(phone, E.ttid) FROM E", OptLevel::kInlineOnly);
  EXPECT_NE(out.find("SUBSTRING(phone, CHAR_LENGTH("), std::string::npos)
      << out;
  std::string out2 = Optimize(
      "SELECT pFromU(phone, E.ttid) FROM E", OptLevel::kInlineOnly);
  EXPECT_NE(out2.find("CONCAT("), std::string::npos) << out2;
}

TEST_F(OptimizerTest, O4AfterO3GroupsMetaColumn) {
  std::string out = Optimize(
      "SELECT SUM(cFromU(cToU(sal, E.ttid), 0)) FROM E", OptLevel::kO4);
  // Inner query: SUM(sal) * CT_to_universal grouped by (ttid, rate).
  EXPECT_NE(out.find("SUM(sal) * "), std::string::npos) << out;
  EXPECT_NE(out.find("GROUP BY E.ttid, "), std::string::npos) << out;
}

TEST_F(OptimizerTest, CanonicalAndO1PassesAreIdentity) {
  std::string q = "SELECT cFromU(cToU(sal, E.ttid), 0) FROM E WHERE x = 1";
  EXPECT_EQ(Optimize(q, OptLevel::kCanonical), Optimize(q, OptLevel::kO1));
}

// -- Table 2 distributability matrix -------------------------------------------

struct DistCase {
  AggKind agg;
  ConversionClass cls;
  bool expected;
};

class DistributabilityTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributabilityTest, MatchesPaperTable2) {
  EXPECT_EQ(AggDistributesOver(GetParam().agg, GetParam().cls),
            GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Table2, DistributabilityTest,
    ::testing::Values(
        // COUNT distributes over everything.
        DistCase{AggKind::kCount, ConversionClass::kMultiplicative, true},
        DistCase{AggKind::kCount, ConversionClass::kLinear, true},
        DistCase{AggKind::kCount, ConversionClass::kOrderPreserving, true},
        DistCase{AggKind::kCount, ConversionClass::kEqualityOnly, true},
        // MIN/MAX need order preservation.
        DistCase{AggKind::kMin, ConversionClass::kMultiplicative, true},
        DistCase{AggKind::kMin, ConversionClass::kLinear, true},
        DistCase{AggKind::kMin, ConversionClass::kOrderPreserving, true},
        DistCase{AggKind::kMin, ConversionClass::kEqualityOnly, false},
        DistCase{AggKind::kMax, ConversionClass::kOrderPreserving, true},
        DistCase{AggKind::kMax, ConversionClass::kEqualityOnly, false},
        // SUM/AVG need (at most) linear structure.
        DistCase{AggKind::kSum, ConversionClass::kMultiplicative, true},
        DistCase{AggKind::kSum, ConversionClass::kLinear, true},
        DistCase{AggKind::kSum, ConversionClass::kOrderPreserving, false},
        DistCase{AggKind::kSum, ConversionClass::kEqualityOnly, false},
        DistCase{AggKind::kAvg, ConversionClass::kMultiplicative, true},
        DistCase{AggKind::kAvg, ConversionClass::kLinear, true},
        DistCase{AggKind::kAvg, ConversionClass::kOrderPreserving, false},
        DistCase{AggKind::kAvg, ConversionClass::kEqualityOnly, false}));

}  // namespace
}  // namespace mt
}  // namespace mtbase
