// End-to-end middleware tests on the paper's running example (Figure 2).
#include "mt/session.h"

#include <gtest/gtest.h>

#include "mt/mtbase.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    mw_ = std::make_unique<Middleware>(db_.get());
    mw_->RegisterTenant(0);
    mw_->RegisterTenant(1);
    ASSERT_OK(db_->ExecuteScript(R"(
      CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL);
      CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,
        CT_to_universal DECIMAL(15,6) NOT NULL, CT_from_universal DECIMAL(15,6) NOT NULL);
      INSERT INTO Tenant VALUES (0, 0), (1, 1);
      INSERT INTO CurrencyTransform VALUES (0, 1, 1), (1, 0.5, 2);
      CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
        AS 'SELECT CT_to_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE;
      CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
        AS 'SELECT CT_from_universal*$1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE;
    )"));
    ConversionPair currency;
    currency.name = "currency";
    currency.to_universal = "currencyToUniversal";
    currency.from_universal = "currencyFromUniversal";
    currency.cls = ConversionClass::kMultiplicative;
    currency.inline_spec.kind = InlineSpec::Kind::kMultiplicative;
    currency.inline_spec.tenant_fk = "T_currency_key";
    currency.inline_spec.meta_table = "CurrencyTransform";
    currency.inline_spec.meta_key = "CT_currency_key";
    currency.inline_spec.to_col = "CT_to_universal";
    currency.inline_spec.from_col = "CT_from_universal";
    ASSERT_OK(mw_->conversions()->Register(currency));

    Session admin(mw_.get(), 0);
    ASSERT_OK(admin.Execute(R"(CREATE TABLE Employees SPECIFIC (
        E_emp_id INTEGER NOT NULL SPECIFIC,
        E_name VARCHAR(25) NOT NULL COMPARABLE,
        E_role_id INTEGER NOT NULL SPECIFIC,
        E_reg_id INTEGER NOT NULL COMPARABLE,
        E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
        E_age INTEGER NOT NULL COMPARABLE))"));
    ASSERT_OK(admin.Execute(R"(CREATE TABLE Roles SPECIFIC (
        R_role_id INTEGER NOT NULL SPECIFIC,
        R_name VARCHAR(25) NOT NULL COMPARABLE))"));
    // Tenant 0 data (USD): Figure 2.
    ASSERT_OK(admin.Execute(
        "INSERT INTO Employees VALUES (0,'Patrick',1,3,50000,30),"
        "(1,'John',0,3,70000,28),(2,'Alice',2,3,150000,46)"));
    ASSERT_OK(admin.Execute(
        "INSERT INTO Roles VALUES (0,'phD stud.'),(1,'postdoc'),(2,'professor')"));
    // Tenant 1 data (currency 1: 1 unit = 0.5 USD).
    Session t1(mw_.get(), 1);
    ASSERT_OK(t1.Execute(
        "INSERT INTO Employees VALUES (0,'Allan',1,2,160000,25),"
        "(1,'Nancy',2,4,400000,72),(2,'Ed',0,4,2000000,46)"));
    ASSERT_OK(t1.Execute(
        "INSERT INTO Roles VALUES (0,'intern'),(1,'researcher'),(2,'executive')"));
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<Middleware> mw_;
};

TEST_F(SessionTest, DefaultScopeIsOwnData) {
  Session s(mw_.get(), 0);
  ASSERT_OK_AND_ASSIGN(auto rs, s.Execute("SELECT COUNT(*) FROM Employees"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);
}

TEST_F(SessionTest, ScopeWithoutGrantIsPruned) {
  Session s(mw_.get(), 0);
  ASSERT_OK(s.Execute("SET SCOPE = \"IN (0, 1)\""));
  ASSERT_OK_AND_ASSIGN(auto rs, s.Execute("SELECT COUNT(*) FROM Employees"));
  // Tenant 1 never granted access: D' = {0}.
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);
}

TEST_F(SessionTest, GrantOpensAccessAndRevokeClosesIt) {
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  Session s(mw_.get(), 0);
  ASSERT_OK(s.Execute("SET SCOPE = \"IN (0, 1)\""));
  ASSERT_OK_AND_ASSIGN(auto rs, s.Execute("SELECT COUNT(*) FROM Employees"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 6);
  ASSERT_OK(t1.Execute("REVOKE READ ON DATABASE FROM 0"));
  ASSERT_OK_AND_ASSIGN(rs, s.Execute("SELECT COUNT(*) FROM Employees"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);
}

TEST_F(SessionTest, PerTableGrant) {
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON Roles TO 0"));
  Session s(mw_.get(), 0);
  ASSERT_OK(s.Execute("SET SCOPE = \"IN (0, 1)\""));
  ASSERT_OK_AND_ASSIGN(auto rs, s.Execute("SELECT COUNT(*) FROM Roles"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 6);
  // Employees not granted: pruned back to own data.
  ASSERT_OK_AND_ASSIGN(rs, s.Execute("SELECT COUNT(*) FROM Employees"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);
}

TEST_F(SessionTest, ClientPresentationInClientFormat) {
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  // Tenant 0 (USD) sees Ed's 2,000,000 (currency 1) as 1,000,000 USD.
  Session s0(mw_.get(), 0);
  ASSERT_OK(s0.Execute("SET SCOPE = \"IN (1)\""));
  ASSERT_OK_AND_ASSIGN(
      auto rs, s0.Execute("SELECT MAX(E_salary) FROM Employees"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 1000000.0);
  // Tenant 1 asking the same query sees her own format.
  Session s1(mw_.get(), 1);
  ASSERT_OK(s1.Execute("SET SCOPE = \"IN (1)\""));
  ASSERT_OK_AND_ASSIGN(rs, s1.Execute("SELECT MAX(E_salary) FROM Employees"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 2000000.0);
}

TEST_F(SessionTest, CrossTenantJoinRespectsTtid) {
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  Session s(mw_.get(), 0);
  ASSERT_OK(s.Execute("SET SCOPE = \"IN (0, 1)\""));
  ASSERT_OK_AND_ASSIGN(
      auto rs,
      s.Execute("SELECT E_name, R_name FROM Employees, Roles WHERE "
                "E_role_id = R_role_id ORDER BY E_name"));
  ASSERT_EQ(rs.rows.size(), 6u);
  // John (tenant 0, role 0) maps to 'phD stud.', not tenant 1's 'intern'.
  for (const auto& row : rs.rows) {
    if (row[0].string_value() == "John") {
      EXPECT_EQ(row[1].string_value(), "phD stud.");
    }
    if (row[0].string_value() == "Ed") {
      EXPECT_EQ(row[1].string_value(), "intern");
    }
  }
}

TEST_F(SessionTest, EmptyInListMeansAllTenants) {
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  Session s(mw_.get(), 0);
  ASSERT_OK(s.Execute("SET SCOPE = \"IN ()\""));
  ASSERT_OK_AND_ASSIGN(auto rs, s.Execute("SELECT COUNT(*) FROM Employees"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 6);
}

TEST_F(SessionTest, ComplexScopeSelectsQualifyingTenants) {
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  Session s(mw_.get(), 0);
  // Listing 2: tenants owning an employee earning > 180K (in C's format, USD).
  // Tenant 0 max = 150K USD; tenant 1 max = 1M USD -> only tenant 1.
  ASSERT_OK(s.Execute("SET SCOPE = \"FROM Employees WHERE E_salary > 180000\""));
  ASSERT_OK_AND_ASSIGN(auto rs, s.Execute("SELECT COUNT(*) FROM Employees"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);
  ASSERT_OK_AND_ASSIGN(rs, s.Execute("SELECT MIN(E_name) FROM Employees"));
  EXPECT_EQ(rs.rows[0][0].string_value(), "Allan");
}

TEST_F(SessionTest, AllLevelsAgreeOnCrossTenantAggregate) {
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  Session s(mw_.get(), 0);
  ASSERT_OK(s.Execute("SET SCOPE = \"IN (0, 1)\""));
  double expected = -1;
  for (OptLevel level :
       {OptLevel::kCanonical, OptLevel::kO1, OptLevel::kO2, OptLevel::kO3,
        OptLevel::kO4, OptLevel::kInlineOnly}) {
    s.set_optimization_level(level);
    ASSERT_OK_AND_ASSIGN(
        auto rs,
        s.Execute("SELECT SUM(E_salary), AVG(E_salary), COUNT(*) FROM "
                  "Employees WHERE E_salary > 60000"));
    double sum = rs.rows[0][0].AsDouble();
    if (expected < 0) expected = sum;
    EXPECT_DOUBLE_EQ(sum, expected) << OptLevelName(level);
    EXPECT_EQ(rs.rows[0][2].int_value(), 5) << OptLevelName(level);
  }
}

TEST_F(SessionTest, DmlOnBehalfOfOtherTenantConverts) {
  // Paper Appendix A.2: tenant 0 copies a record to tenant 1, the salary is
  // converted into tenant 1's format.
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  Session s(mw_.get(), 0);
  ASSERT_OK(s.Execute("SET SCOPE = \"IN (1)\""));
  ASSERT_OK(s.Execute(
      "INSERT INTO Employees VALUES (7, 'Zoe', 1, 3, 90000, 31)"));
  Session check(mw_.get(), 1);
  ASSERT_OK_AND_ASSIGN(
      auto rs,
      check.Execute("SELECT E_salary FROM Employees WHERE E_emp_id = 7"));
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 180000.0);  // 90000 USD * 2
}

TEST_F(SessionTest, UpdateAcrossTenantsConvertsPerOwner) {
  Session t1(mw_.get(), 1);
  ASSERT_OK(t1.Execute("GRANT READ ON DATABASE TO 0"));
  Session s(mw_.get(), 0);
  ASSERT_OK(s.Execute("SET SCOPE = \"IN (0, 1)\""));
  ASSERT_OK(s.Execute("UPDATE Employees SET E_salary = 99000 WHERE E_age = 46"));
  Session c1(mw_.get(), 1);
  ASSERT_OK_AND_ASSIGN(auto rs, c1.Execute(
      "SELECT E_salary FROM Employees WHERE E_name = 'Ed'"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 198000.0);
  Session c0(mw_.get(), 0);
  ASSERT_OK_AND_ASSIGN(rs, c0.Execute(
      "SELECT E_salary FROM Employees WHERE E_name = 'Alice'"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 99000.0);
}

TEST_F(SessionTest, DeleteScopedToDataset) {
  Session s(mw_.get(), 0);
  ASSERT_OK(s.Execute("DELETE FROM Roles WHERE R_role_id = 0"));
  ASSERT_OK_AND_ASSIGN(auto rs, s.Execute("SELECT COUNT(*) FROM Roles"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 2);
  // Tenant 1's role 0 untouched.
  Session c1(mw_.get(), 1);
  ASSERT_OK_AND_ASSIGN(rs, c1.Execute("SELECT COUNT(*) FROM Roles"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);
}

TEST_F(SessionTest, RejectionSurfacesAsError) {
  Session s(mw_.get(), 0);
  auto r = s.Execute("SELECT 1 FROM Employees WHERE E_role_id = E_age");
  EXPECT_EQ(r.status().code(), StatusCode::kRejected);
}

TEST_F(SessionTest, RewriteExposesGeneratedSql) {
  Session s(mw_.get(), 0);
  s.set_optimization_level(OptLevel::kCanonical);
  ASSERT_OK_AND_ASSIGN(std::string sql,
                       s.Rewrite("SELECT E_salary FROM Employees"));
  EXPECT_NE(sql.find("currencyToUniversal"), std::string::npos);
  ASSERT_OK(s.Execute("SELECT E_salary FROM Employees").status());
  EXPECT_EQ(s.last_sql(), sql);
}

TEST_F(SessionTest, CreateViewIsRewritten) {
  Session s(mw_.get(), 0);
  ASSERT_OK(s.Execute(
      "CREATE VIEW rich AS SELECT E_name FROM Employees WHERE E_salary > "
      "100000"));
  ASSERT_OK_AND_ASSIGN(auto rs, s.Execute("SELECT COUNT(*) FROM rich"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 1);  // Alice only (own data)
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
