#include "mt/privilege.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

TEST(PrivilegeTest, OwnerAlwaysHasAccess) {
  PrivilegeManager pm;
  EXPECT_TRUE(pm.Has(5, "employees", Privilege::kRead, 5));
  EXPECT_TRUE(pm.Has(5, "employees", Privilege::kDelete, 5));
}

TEST(PrivilegeTest, GrantAndRevoke) {
  PrivilegeManager pm;
  EXPECT_FALSE(pm.Has(1, "employees", Privilege::kRead, 2));
  pm.Grant(1, "employees", Privilege::kRead, 2);
  EXPECT_TRUE(pm.Has(1, "employees", Privilege::kRead, 2));
  EXPECT_FALSE(pm.Has(1, "employees", Privilege::kInsert, 2));
  EXPECT_FALSE(pm.Has(1, "roles", Privilege::kRead, 2));
  pm.Revoke(1, "employees", Privilege::kRead, 2);
  EXPECT_FALSE(pm.Has(1, "employees", Privilege::kRead, 2));
}

TEST(PrivilegeTest, TableNameCaseInsensitive) {
  PrivilegeManager pm;
  pm.Grant(1, "Employees", Privilege::kRead, 2);
  EXPECT_TRUE(pm.Has(1, "EMPLOYEES", Privilege::kRead, 2));
}

TEST(PrivilegeTest, DatabaseWideGrantCoversAllTables) {
  PrivilegeManager pm;
  pm.Grant(1, "", Privilege::kRead, 2);
  EXPECT_TRUE(pm.Has(1, "employees", Privilege::kRead, 2));
  EXPECT_TRUE(pm.Has(1, "anything", Privilege::kRead, 2));
}

TEST(PrivilegeTest, PublicGrantee) {
  PrivilegeManager pm;
  pm.Grant(1, "", Privilege::kRead, kPublicGrantee);
  EXPECT_TRUE(pm.Has(1, "employees", Privilege::kRead, 42));
  EXPECT_TRUE(pm.Has(1, "employees", Privilege::kRead, 77));
}

TEST(PrivilegeTest, PruneDataset) {
  PrivilegeManager pm;
  pm.Grant(2, "employees", Privilege::kRead, 9);
  pm.Grant(3, "", Privilege::kRead, 9);
  // Client 9 queries employees over D = {1,2,3,9}.
  auto pruned = pm.PruneDataset({1, 2, 3, 9}, {"employees"}, 9);
  EXPECT_EQ(pruned, (std::vector<int64_t>{2, 3, 9}));
  // With a second table, tenant 2's table-level grant no longer suffices.
  pruned = pm.PruneDataset({1, 2, 3, 9}, {"employees", "roles"}, 9);
  EXPECT_EQ(pruned, (std::vector<int64_t>{3, 9}));
}

TEST(PrivilegeTest, ParsePrivilegeNames) {
  ASSERT_OK_AND_ASSIGN(Privilege p, ParsePrivilege("read"));
  EXPECT_EQ(p, Privilege::kRead);
  ASSERT_OK_AND_ASSIGN(p, ParsePrivilege("INSERT"));
  EXPECT_EQ(p, Privilege::kInsert);
  EXPECT_FALSE(ParsePrivilege("fly").ok());
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
