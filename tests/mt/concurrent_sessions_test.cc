// Concurrent middleware sessions: the serving layer end to end.
//
// Sixteen tenants, one session each, driven from eight threads (plus
// cross-tenant analytic readers): every session interleaves single-tenant
// DML with own-scope reads whose results are *deterministic* despite the
// concurrency — tenant isolation means no other session can touch this
// tenant's rows, so each session observes exactly its own write history.
// Cross-tenant readers see only statement-atomic states (row counts are
// write-invariant here). Afterwards the final database must match a serial
// replay on a twin middleware, the shared plan cache must have served
// cross-session hits, and the session metrics must reconcile with the
// statements issued. Designed to run clean under ThreadSanitizer.
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/obs/metrics.h"
#include "mt/session.h"
#include "tests/test_util.h"

namespace mtbase {
namespace mt {
namespace {

constexpr int kTenants = 16;
constexpr int kRowsPerTenant = 12;
constexpr int kOpsPerSession = 20;

/// Minimal multi-tenant environment: a tenant-specific table with comparable
/// columns only (no conversion meta needed), every tenant granting READ to
/// the public so "IN ()" really scans all tenants.
struct Env {
  Env() {
    db = std::make_unique<engine::Database>();
    mw = std::make_unique<Middleware>(db.get());
    for (int t = 1; t <= kTenants; ++t) mw->RegisterTenant(t);
    Session admin(mw.get(), 1);
    Status st = admin
                    .Execute("CREATE TABLE Acct SPECIFIC ("
                             "A_id INTEGER NOT NULL SPECIFIC, "
                             "A_bal INTEGER NOT NULL COMPARABLE)")
                    .status();
    ok = st.ok();
    if (!ok) return;
    for (int t = 1; t <= kTenants && ok; ++t) {
      Session s(mw.get(), t);
      std::string values;
      for (int i = 0; i < kRowsPerTenant; ++i) {
        if (!values.empty()) values += ", ";
        values += "(" + std::to_string(i) + ", 100)";
      }
      ok = ok && s.Execute("INSERT INTO Acct VALUES " + values).ok();
      // Public READ (the MT-H loader's bulk-grant shape): "IN ()" scans all.
      mw->privileges()->Grant(t, "", Privilege::kRead, kPublicGrantee);
    }
  }

  std::unique_ptr<engine::Database> db;
  std::unique_ptr<Middleware> mw;
  bool ok = false;
};

class FailureLog {
 public:
  void Record(const std::string& msg) {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
    if (first_.empty()) first_ = msg;
  }
  int count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  std::string first() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_;
  }

 private:
  mutable std::mutex mu_;
  int count_ = 0;
  std::string first_;
};

std::string Canon(const engine::ResultSet& rs) { return CanonRows(rs.rows); }

// The tentpole scenario: 8 threads x 16 tenant sessions of mixed DML and
// reads, plus analytic readers, then a full serial-replay comparison.
TEST(ConcurrentSessionsTest, MixedWorkloadMatchesSerialReplay) {
  Env env;
  ASSERT_TRUE(env.ok);
  obs::MetricsRegistry* metrics = obs::MetricsRegistry::Global();
  const uint64_t statements_before =
      metrics->CounterValue("mtbase_session_statements_total");
  const uint64_t cache_hits_before =
      metrics->CounterValue("mtbase_mt_plan_cache_hits_total");

  // Two tenant sessions per worker thread; every session's op sequence is
  // fixed up front so the serial replay below is exact.
  constexpr int kThreads = 8;
  static_assert(kTenants == 2 * kThreads, "two sessions per thread");
  FailureLog failures;
  std::atomic<uint64_t> issued{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      std::vector<std::unique_ptr<Session>> mine;
      std::vector<int> tenant_of;
      std::vector<int> updates_done;
      for (int k = 0; k < 2; ++k) {
        const int t = 1 + w * 2 + k;
        mine.push_back(std::make_unique<Session>(env.mw.get(), t));
        tenant_of.push_back(t);
        updates_done.push_back(0);
      }
      for (int op = 0; op < kOpsPerSession; ++op) {
        for (size_t k = 0; k < mine.size(); ++k) {
          Session* s = mine[k].get();
          if (op % 2 == 0) {
            // Own-tenant DML: nobody else writes this tenant's rows.
            auto r = s->Execute("UPDATE Acct SET A_bal = A_bal + 1");
            ++issued;
            if (!r.ok()) {
              failures.Record(r.status().ToString());
            } else {
              ++updates_done[k];
            }
          } else {
            // Own-scope read: deterministic given this session's history.
            auto r = s->Execute("SELECT COUNT(*), SUM(A_bal) FROM Acct");
            ++issued;
            if (!r.ok()) {
              failures.Record(r.status().ToString());
              continue;
            }
            const int64_t expect_sum =
                kRowsPerTenant * (100 + updates_done[k]);
            const std::string want = CanonRows(
                {{Value::Int(kRowsPerTenant), Value::Int(expect_sum)}});
            if (Canon(r.value()) != want) {
              failures.Record("tenant " + std::to_string(tenant_of[k]) +
                              ": got " + Canon(r.value()) + ", want " + want);
            }
          }
        }
      }
    });
  }
  // Analytic readers: cross-tenant COUNT is invariant under the UPDATE-only
  // write mix, so every atomic snapshot shows the same value.
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  const std::string analytic = "SELECT COUNT(*) FROM Acct";
  const std::string analytic_want =
      CanonRows({{Value::Int(kTenants * kRowsPerTenant)}});
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      Session s(env.mw.get(), 1);
      Status st = s.Execute("SET SCOPE = \"IN ()\"").status();
      if (!st.ok()) {
        failures.Record(st.ToString());
        return;
      }
      while (!done.load(std::memory_order_acquire)) {
        auto rs = s.Execute(analytic);
        if (!rs.ok()) {
          failures.Record(rs.status().ToString());
        } else if (Canon(rs.value()) != analytic_want) {
          failures.Record("analytic torn read: " + Canon(rs.value()));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  done.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();
  ASSERT_EQ(failures.count(), 0) << failures.first();

  // Serial replay on a twin middleware: same per-tenant statement counts,
  // one thread. Every tenant's final rows must match byte-for-byte.
  Env twin;
  ASSERT_TRUE(twin.ok);
  for (int t = 1; t <= kTenants; ++t) {
    Session s(twin.mw.get(), t);
    for (int u = 0; u < kOpsPerSession / 2; ++u) {
      ASSERT_OK(s.Execute("UPDATE Acct SET A_bal = A_bal + 1").status());
    }
  }
  for (int t = 1; t <= kTenants; ++t) {
    Session got(env.mw.get(), t);
    Session want(twin.mw.get(), t);
    auto got_rs = got.Execute("SELECT A_id, A_bal FROM Acct ORDER BY A_id");
    auto want_rs = want.Execute("SELECT A_id, A_bal FROM Acct ORDER BY A_id");
    ASSERT_OK(got_rs);
    ASSERT_OK(want_rs);
    EXPECT_EQ(Canon(got_rs.value()), Canon(want_rs.value())) << "tenant " << t;
  }

  // Accounting: the session statement counter moved by at least the mixed
  // ops issued (readers add more), and the shared plan cache served
  // cross-session hits (16 sessions, 2 distinct statement texts).
  EXPECT_GE(metrics->CounterValue("mtbase_session_statements_total") -
                statements_before,
            issued.load());
  EXPECT_GT(metrics->CounterValue("mtbase_mt_plan_cache_hits_total"),
            cache_hits_before);
  EXPECT_GT(env.mw->plan_cache()->hits(), 0u);
}

// Sixteen fresh sessions of one tenant concurrently executing a statement
// another session already compiled: every one must adopt the shared entry
// (16 hits, zero new misses) and return identical bytes.
TEST(ConcurrentSessionsTest, WarmCacheServesAllConcurrentSessions) {
  Env env;
  ASSERT_TRUE(env.ok);
  const std::string sql =
      "SELECT A_id, A_bal FROM Acct WHERE A_bal >= 0 ORDER BY A_id";
  Session warm(env.mw.get(), 3);
  ASSERT_OK_AND_ASSIGN(auto warm_rs, warm.Execute(sql));
  const std::string want = Canon(warm_rs);
  const uint64_t hits_before = env.mw->plan_cache()->hits();
  const uint64_t misses_before = env.mw->plan_cache()->misses();

  constexpr int kSessions = 16;
  FailureLog failures;
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&] {
      Session s(env.mw.get(), 3);
      auto rs = s.Execute(sql);
      if (!rs.ok()) {
        failures.Record(rs.status().ToString());
      } else if (Canon(rs.value()) != want) {
        failures.Record("bytes diverged: " + Canon(rs.value()));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.count(), 0) << failures.first();
  EXPECT_EQ(env.mw->plan_cache()->hits() - hits_before,
            static_cast<uint64_t>(kSessions));
  EXPECT_EQ(env.mw->plan_cache()->misses(), misses_before);
}

// Closing a session that is queued at admission control aborts its statement
// with a clean error; other sessions are unaffected.
TEST(ConcurrentSessionsTest, CloseAbortsQueuedStatement) {
  Env env;
  ASSERT_TRUE(env.ok);
  env.db->set_max_concurrent_statements(1);
  ASSERT_OK(env.db->admission()->Acquire(nullptr));  // hold the only slot
  Session victim(env.mw.get(), 2);
  Status victim_status = Status::OK();
  std::thread queued([&] {
    victim_status = victim.Execute("SELECT COUNT(*) FROM Acct").status();
  });
  while (env.db->admission()->queue_depth() < 1) std::this_thread::yield();
  victim.Close();
  queued.join();
  EXPECT_FALSE(victim_status.ok());
  EXPECT_NE(victim_status.ToString().find("session closed"),
            std::string::npos)
      << victim_status.ToString();
  // New statements on the closed session are refused outright.
  EXPECT_FALSE(victim.Execute("SELECT COUNT(*) FROM Acct").ok());
  env.db->admission()->Release();
  Session other(env.mw.get(), 2);
  EXPECT_OK(other.Execute("SELECT COUNT(*) FROM Acct").status());
}

}  // namespace
}  // namespace mt
}  // namespace mtbase
