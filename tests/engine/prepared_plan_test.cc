// Prepared-statement API at the engine layer: one-time compilation, $n / ?
// parameter binding, O(1) re-execution (asserted through ExecStats, not
// wall-clock) and transparent recompilation after DDL.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

class PreparedPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR(10), c DECIMAL(15,2));
      INSERT INTO t VALUES (1, 'x', 1.50), (2, 'y', 2.50), (3, 'z', 3.50);
    )"));
  }

  Database db_;
};

TEST_F(PreparedPlanTest, ExecuteManyWithParams) {
  ASSERT_OK_AND_ASSIGN(PreparedPlan plan,
                       db_.Prepare("SELECT a, b FROM t WHERE a >= $1"));
  EXPECT_EQ(plan.param_count(), 1);
  ASSERT_OK_AND_ASSIGN(ResultSet rs, plan.Execute({Value::Int(2)}));
  EXPECT_EQ(rs.rows.size(), 2u);
  ASSERT_OK_AND_ASSIGN(rs, plan.Execute({Value::Int(3)}));
  EXPECT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].string_value(), "z");
  ASSERT_OK_AND_ASSIGN(rs, plan.Execute({Value::Int(0)}));
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(PreparedPlanTest, QuestionMarkPlaceholdersAutoNumber) {
  ASSERT_OK_AND_ASSIGN(PreparedPlan plan,
                       db_.Prepare("SELECT a FROM t WHERE a > ? AND b = ?"));
  EXPECT_EQ(plan.param_count(), 2);
  ASSERT_OK_AND_ASSIGN(ResultSet rs,
                       plan.Execute({Value::Int(1), Value::Str("z")}));
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);
}

TEST_F(PreparedPlanTest, MissingParamsRejected) {
  ASSERT_OK_AND_ASSIGN(PreparedPlan plan,
                       db_.Prepare("SELECT a FROM t WHERE a = $2"));
  EXPECT_EQ(plan.param_count(), 2);
  auto r = plan.Execute({Value::Int(1)});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PreparedPlanTest, ReExecutionSkipsParserAndPlanner) {
  ASSERT_OK_AND_ASSIGN(PreparedPlan plan,
                       db_.Prepare("SELECT SUM(c) FROM t WHERE a >= $1"));
  ASSERT_OK(plan.Execute({Value::Int(1)}).status());
  StatsScope scope(db_.stats());
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(plan.Execute({Value::Int(i)}).status());
  }
  ExecStats d = scope.Delta();
  EXPECT_EQ(d.statements_parsed, 0u);
  EXPECT_EQ(d.statements_planned, 0u);
  EXPECT_EQ(d.prepare_count, 0u);
  EXPECT_EQ(d.plan_cache_hits, 5u);
}

TEST_F(PreparedPlanTest, DdlTransparentlyRecompiles) {
  ASSERT_OK_AND_ASSIGN(PreparedPlan plan, db_.Prepare("SELECT COUNT(*) FROM t"));
  ASSERT_OK_AND_ASSIGN(ResultSet rs, plan.Execute());
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);
  // Unrelated DDL moves the compilation version; the handle recompiles once
  // and keeps working against the (possibly relocated) catalog objects.
  ASSERT_OK(db_.Execute("CREATE TABLE other (x INTEGER)").status());
  StatsScope scope(db_.stats());
  ASSERT_OK_AND_ASSIGN(rs, plan.Execute());
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);
  EXPECT_EQ(scope.Delta().prepare_count, 1u);
  EXPECT_EQ(scope.Delta().statements_parsed, 0u);  // recompile is parse-free
}

TEST_F(PreparedPlanTest, DroppedTableFailsThenRecoversAfterRecreate) {
  ASSERT_OK_AND_ASSIGN(PreparedPlan plan, db_.Prepare("SELECT COUNT(*) FROM t"));
  ASSERT_OK(plan.Execute().status());
  ASSERT_OK(db_.Execute("DROP TABLE t").status());
  EXPECT_FALSE(plan.Execute().ok());
  ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER, b VARCHAR(10), c DECIMAL(15,2));"
      "INSERT INTO t VALUES (9, 'q', 0.10)"));
  ASSERT_OK_AND_ASSIGN(ResultSet rs, plan.Execute());
  EXPECT_EQ(rs.rows[0][0].int_value(), 1);
}

TEST_F(PreparedPlanTest, PreparedDmlReExecutes) {
  ASSERT_OK_AND_ASSIGN(PreparedPlan ins,
                       db_.Prepare("INSERT INTO t VALUES ($1, $2, $3)"));
  EXPECT_EQ(ins.param_count(), 3);
  ASSERT_OK(
      ins.Execute({Value::Int(10), Value::Str("p"), Value::Dec(Decimal())})
          .status());
  ASSERT_OK(
      ins.Execute({Value::Int(11), Value::Str("q"), Value::Dec(Decimal())})
          .status());
  ASSERT_OK_AND_ASSIGN(ResultSet rs,
                       db_.Execute("SELECT COUNT(*) FROM t WHERE a >= 10"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 2);

  ASSERT_OK_AND_ASSIGN(PreparedPlan del,
                       db_.Prepare("DELETE FROM t WHERE a = ?"));
  ASSERT_OK(del.Execute({Value::Int(10)}).status());
  ASSERT_OK(del.Execute({Value::Int(11)}).status());
  ASSERT_OK_AND_ASSIGN(rs, db_.Execute("SELECT COUNT(*) FROM t"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);
}

TEST_F(PreparedPlanTest, PreparedDmlBindsOnce) {
  // DML carries a bound plan (predicates, assignments and VALUES expressions
  // bound at compile time): re-execution must not touch the parser or the
  // binder (statements_planned counts DML binding as a compilation).
  ASSERT_OK_AND_ASSIGN(PreparedPlan ins,
                       db_.Prepare("INSERT INTO t VALUES ($1, $2, $3)"));
  ASSERT_OK_AND_ASSIGN(PreparedPlan up,
                       db_.Prepare("UPDATE t SET b = $1 WHERE a = $2"));
  // First executions amortize the compile.
  ASSERT_OK(ins.Execute({Value::Int(20), Value::Str("a"), Value::Dec(Decimal())})
                .status());
  ASSERT_OK(up.Execute({Value::Str("b0"), Value::Int(20)}).status());
  StatsScope scope(db_.stats());
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(ins.Execute({Value::Int(21 + i), Value::Str("r"),
                           Value::Dec(Decimal())})
                  .status());
    ASSERT_OK(up.Execute({Value::Str("r2"), Value::Int(21 + i)}).status());
  }
  ExecStats d = scope.Delta();
  EXPECT_EQ(d.statements_parsed, 0u);
  EXPECT_EQ(d.statements_planned, 0u);  // no re-binding across executes
  EXPECT_EQ(d.prepare_count, 0u);
  EXPECT_EQ(d.plan_cache_hits, 10u);
  ASSERT_OK_AND_ASSIGN(ResultSet rs,
                       db_.Execute("SELECT COUNT(*) FROM t WHERE b = 'r2'"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 5);
}

TEST_F(PreparedPlanTest, PreparedDmlRebindsAfterDdl) {
  ASSERT_OK_AND_ASSIGN(PreparedPlan del,
                       db_.Prepare("DELETE FROM t WHERE a = $1"));
  ASSERT_OK(del.Execute({Value::Int(1)}).status());
  // DDL moves the compilation version; the bound DML (which caches a raw
  // table pointer) must recompile instead of touching a relocated table.
  ASSERT_OK(db_.Execute("CREATE TABLE unrelated (x INTEGER)").status());
  StatsScope scope(db_.stats());
  ASSERT_OK(del.Execute({Value::Int(2)}).status());
  EXPECT_EQ(scope.Delta().prepare_count, 1u);
  ASSERT_OK_AND_ASSIGN(ResultSet rs, db_.Execute("SELECT COUNT(*) FROM t"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 1);
}

TEST_F(PreparedPlanTest, InsertSelectSourcePlannedOnce) {
  ASSERT_OK(db_.Execute("CREATE TABLE t2 (a INTEGER, b VARCHAR(10), c "
                        "DECIMAL(15,2))")
                .status());
  ASSERT_OK_AND_ASSIGN(
      PreparedPlan ins,
      db_.Prepare("INSERT INTO t2 SELECT a, b, c FROM t WHERE a >= $1"));
  ASSERT_OK(ins.Execute({Value::Int(3)}).status());
  StatsScope scope(db_.stats());
  ASSERT_OK(ins.Execute({Value::Int(2)}).status());
  ASSERT_OK(ins.Execute({Value::Int(1)}).status());
  ExecStats d = scope.Delta();
  EXPECT_EQ(d.statements_planned, 0u);  // source plan compiled once
  EXPECT_EQ(d.statements_parsed, 0u);
  EXPECT_EQ(d.plan_cache_hits, 2u);
  ASSERT_OK_AND_ASSIGN(ResultSet rs, db_.Execute("SELECT COUNT(*) FROM t2"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 6);  // 1 + 2 + 3 qualifying rows
}

TEST_F(PreparedPlanTest, OneshotExecutionIsNotACacheHit) {
  StatsScope scope(db_.stats());
  ASSERT_OK(db_.Execute("SELECT COUNT(*) FROM t").status());
  ASSERT_OK(db_.Execute("SELECT SUM(a) FROM t").status());
  ExecStats d = scope.Delta();
  EXPECT_EQ(d.prepare_count, 2u);
  EXPECT_EQ(d.plan_cache_hits, 0u);  // nothing was reused
}

TEST_F(PreparedPlanTest, ParamsInUpdateAssignments) {
  ASSERT_OK_AND_ASSIGN(PreparedPlan up,
                       db_.Prepare("UPDATE t SET b = $1 WHERE a = $2"));
  ASSERT_OK(up.Execute({Value::Str("new"), Value::Int(1)}).status());
  ASSERT_OK_AND_ASSIGN(ResultSet rs,
                       db_.Execute("SELECT b FROM t WHERE a = 1"));
  EXPECT_EQ(rs.rows[0][0].string_value(), "new");
}

TEST_F(PreparedPlanTest, UdfBodyReplannedAfterDdl) {
  ASSERT_OK(db_.Execute("CREATE FUNCTION maxa (INTEGER) RETURNS INTEGER AS "
                        "'SELECT MAX(a) FROM t WHERE a <= $1' LANGUAGE SQL "
                        "IMMUTABLE")
                .status());
  ASSERT_OK_AND_ASSIGN(ResultSet rs, db_.Execute("SELECT maxa(2)"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 2);
  // Dropping/recreating the table relocates it; the UDF body must not run
  // its stale plan (use-after-free) — it replans on every catalog DDL.
  ASSERT_OK(db_.Execute("DROP TABLE t").status());
  EXPECT_FALSE(db_.Execute("SELECT maxa(2)").ok());
  ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER, b VARCHAR(10), c DECIMAL(15,2));"
      "INSERT INTO t VALUES (7, 'n', 0.10)"));
  ASSERT_OK_AND_ASSIGN(rs, db_.Execute("SELECT maxa(10)"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 7);
}

TEST_F(PreparedPlanTest, SetScopeNotPreparable) {
  auto r = db_.Prepare("SET SCOPE = \"IN (1)\"");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PreparedPlanTest, ScriptErrorsCarryStatementIndex) {
  auto r = db_.ExecuteScript(
      "INSERT INTO t VALUES (4, 'w', 4.50);"
      "SELECT * FROM missing_table;"
      "SELECT 1");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("statement 2:"), std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
