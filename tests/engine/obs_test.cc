// Observability unit tests (src/engine/obs/): the metrics registry, the
// statement tracer, the ExecStats gauge-delta semantics, and the engine's
// EXPLAIN (ANALYZE) surface on a small database.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/obs/metrics.h"
#include "engine/obs/profile.h"
#include "engine/obs/trace.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CountersAccumulate) {
  auto* m = obs::MetricsRegistry::Global();
  m->ResetForTesting();
  m->Add("test_counter_total");
  m->Add("test_counter_total", 4);
  EXPECT_EQ(m->CounterValue("test_counter_total"), 5u);
  EXPECT_EQ(m->CounterValue("never_touched_total"), 0u);
}

TEST(MetricsTest, HistogramQuantilesFromBuckets) {
  auto* m = obs::MetricsRegistry::Global();
  m->ResetForTesting();
  // 100 fast observations (bucket le=0.00025) and 10 slow ones (le=0.5):
  // the median lands in the fast bucket, the p99 in the slow one.
  for (int i = 0; i < 100; ++i) m->Observe("test_lat_seconds", 0.0002);
  for (int i = 0; i < 10; ++i) m->Observe("test_lat_seconds", 0.3);
  EXPECT_EQ(m->HistogramCount("test_lat_seconds"), 110u);
  EXPECT_DOUBLE_EQ(m->Quantile("test_lat_seconds", 0.5), 0.00025);
  EXPECT_DOUBLE_EQ(m->Quantile("test_lat_seconds", 0.95), 0.5);
  EXPECT_DOUBLE_EQ(m->Quantile("test_lat_seconds", 0.99), 0.5);
  EXPECT_EQ(m->Quantile("unknown_seconds", 0.5), 0.0);
}

TEST(MetricsTest, InfBucketReportsLargestFiniteBound) {
  auto* m = obs::MetricsRegistry::Global();
  m->ResetForTesting();
  m->Observe("test_slow_seconds", 99.0);  // beyond every finite bucket
  EXPECT_EQ(m->HistogramCount("test_slow_seconds"), 1u);
  EXPECT_DOUBLE_EQ(m->Quantile("test_slow_seconds", 0.5), 10.0);
}

TEST(MetricsTest, RenderPrometheusExposition) {
  auto* m = obs::MetricsRegistry::Global();
  m->ResetForTesting();
  m->Add("test_counter_total", 3);
  m->Observe("test_lat_seconds", 0.0002);
  m->Observe("test_lat_seconds", 0.3);
  const std::string text = m->RenderPrometheus();
  EXPECT_NE(text.find("# TYPE test_counter_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_counter_total 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE test_lat_seconds histogram\n"),
            std::string::npos)
      << text;
  // Buckets are cumulative and end with +Inf; _sum and _count close the
  // series.
  EXPECT_NE(text.find("test_lat_seconds_bucket{le=\"0.00025\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_lat_seconds_bucket{le=\"0.5\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_lat_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_lat_seconds_count 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_lat_seconds_sum "), std::string::npos) << text;
}

TEST(MetricsTest, RenderJsonShape) {
  auto* m = obs::MetricsRegistry::Global();
  m->ResetForTesting();
  m->Add("test_counter_total", 2);
  m->Observe("test_lat_seconds", 0.0002);
  const std::string json = m->RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test_counter_total\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test_lat_seconds\": {\"count\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p50\": 0.00025"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// ExecStats gauge-delta semantics
// ---------------------------------------------------------------------------

// threads_used is a gauge: a StatsScope delta must report the higher
// watermark of the two snapshots, never an underflowed subtraction.
TEST(StatsGaugeTest, ThreadsUsedDeltaIsMaxOfSnapshots) {
  ExecStats a, b;
  a.threads_used = 4;
  b.threads_used = 2;
  EXPECT_EQ((a - b).threads_used, 4u);
  // A delta where the baseline watermark is higher (e.g. an earlier
  // statement used more workers) reports the baseline, not 2^64 - 2.
  a.threads_used = 1;
  b.threads_used = 3;
  EXPECT_EQ((a - b).threads_used, 3u);
  // Monotonic counters still subtract.
  a.rows_scanned = 10;
  b.rows_scanned = 4;
  EXPECT_EQ((a - b).rows_scanned, 6u);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(TraceTest, FinishFromStatusClassifiesOutcomes) {
  obs::StatementTrace rec;
  rec.spans.push_back({});
  rec.spans.back().phase = "execute";
  rec.FinishFromStatus(Status::OK());
  EXPECT_EQ(rec.outcome, "ok");

  rec.FinishFromStatus(
      Status::InvalidArgument("plan verification failed:\nTENANT..."));
  EXPECT_EQ(rec.outcome, "refused");
  EXPECT_EQ(rec.spans.back().outcome, "refused");

  obs::StatementTrace audit_rec;
  audit_rec.spans.push_back({});
  audit_rec.spans.back().phase = "audit";
  audit_rec.FinishFromStatus(Status::InvalidArgument(
      "rewrite audit failed (DFILTER_MISSING, TTID_LEAK):\ndetails"));
  EXPECT_EQ(audit_rec.outcome, "refused");
  EXPECT_EQ(audit_rec.codes, "DFILTER_MISSING, TTID_LEAK");
  EXPECT_EQ(audit_rec.spans.back().codes, "DFILTER_MISSING, TTID_LEAK");

  obs::StatementTrace err_rec;
  err_rec.FinishFromStatus(Status::NotFound("table nope does not exist"));
  EXPECT_EQ(err_rec.outcome, "error");
}

TEST(TraceTest, ToJsonEscapesAndOrdersFields) {
  obs::StatementTrace rec;
  rec.layer = "engine";
  rec.statement = "SELECT \"a\"\nFROM t";
  rec.seq = 7;
  obs::TraceSpan sp;
  sp.phase = "execute";
  sp.duration_ms = 1.5;
  sp.has_stats = true;
  sp.stats.rows_scanned = 3;
  rec.spans.push_back(sp);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"seq\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"layer\": \"engine\""), std::string::npos) << json;
  EXPECT_NE(json.find("SELECT \\\"a\\\"\\nFROM t"), std::string::npos) << json;
  EXPECT_NE(json.find("\"phase\": \"execute\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"duration_ms\": 1.500"), std::string::npos) << json;
  // Only nonzero stats fields are emitted.
  EXPECT_NE(json.find("\"stats\": {\"rows_scanned\": 3}"), std::string::npos)
      << json;
}

TEST(TraceTest, JsonEscapeControlCharacters) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(obs::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

// An engine statement executed while a tracer is installed emits exactly one
// JSONL record carrying the compile and execute spans.
TEST(TraceTest, ExecuteEmitsOneRecordPerStatement) {
  const std::string path = ::testing::TempDir() + "/obs_trace_unit.jsonl";
  std::remove(path.c_str());
  {
    obs::Tracer tracer(path);
    ASSERT_TRUE(tracer.enabled());
    obs::Tracer::SetGlobalForTesting(&tracer);
    Database db;
    ASSERT_OK(db.ExecuteScript(R"(
      CREATE TABLE t (a INTEGER NOT NULL);
      INSERT INTO t VALUES (1), (2), (3);
    )"));
    std::remove(path.c_str());  // keep only the SELECT's record
    {
      obs::Tracer select_tracer(path);
      ASSERT_TRUE(select_tracer.enabled());
      obs::Tracer::SetGlobalForTesting(&select_tracer);
      ASSERT_OK(db.Execute("SELECT a FROM t WHERE a > 1"));
    }
    obs::Tracer::SetGlobalForTesting(nullptr);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"seq\": 1"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"layer\": \"engine\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("SELECT a FROM t WHERE a > 1"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"outcome\": \"ok\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"phase\": \"parse\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"phase\": \"plan\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"phase\": \"execute\""), std::string::npos)
      << lines[0];
}

// ---------------------------------------------------------------------------
// EXPLAIN (ANALYZE) at the engine layer
// ---------------------------------------------------------------------------

class ObsAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      CREATE TABLE t (a INTEGER NOT NULL, b INTEGER);
      INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40);
    )"));
  }

  Database db_;
};

TEST_F(ObsAnalyzeTest, AnnotatesEveryOperatorAndAppendsFooter) {
  ASSERT_OK_AND_ASSIGN(auto sel,
                       sql::ParseSelect("SELECT a, b FROM t WHERE a >= 2 "
                                        "ORDER BY a DESC"));
  ResultSet rs;
  ASSERT_OK_AND_ASSIGN(std::string text,
                       db_.ExplainAnalyzeSelect(*sel, nullptr, &rs));
  EXPECT_EQ(rs.rows.size(), 3u);
  // Every operator line carries an [actual: ...] suffix; footers start with
  // '[' at column zero and sub-plan headers carry no profile of their own.
  std::istringstream lines(text);
  std::string line;
  int operator_lines = 0;
  while (std::getline(lines, line)) {
    const size_t first = line.find_first_not_of(' ');
    if (first == std::string::npos) continue;
    const std::string trimmed = line.substr(first);
    if (trimmed[0] == '[') continue;  // statement footer
    if (trimmed.rfind("SubPlan (", 0) == 0 ||
        trimmed.rfind("InitPlan (", 0) == 0) {
      continue;  // expression sub-plan section header, not an operator
    }
    ++operator_lines;
    EXPECT_NE(line.find("[actual:"), std::string::npos) << line << "\n"
                                                        << text;
  }
  EXPECT_GE(operator_lines, 3) << text;  // Sort <- Project <- Scan at least
  // The analyze footer reports the instrumented run's root row count.
  EXPECT_NE(text.find("[analyze: rows=3 "), std::string::npos) << text;
  EXPECT_NE(text.find("time="), std::string::npos) << text;
}

TEST_F(ObsAnalyzeTest, VerifyFooterPrecedesAnalyzeFooter) {
  ASSERT_OK_AND_ASSIGN(auto sel, sql::ParseSelect("SELECT a FROM t"));
  verify::VerifyContext vctx;  // engine-level checks only
  ASSERT_OK_AND_ASSIGN(std::string text,
                       db_.ExplainAnalyzeSelect(*sel, &vctx, nullptr));
  const size_t verify_pos = text.find("[verify: ok]");
  const size_t analyze_pos = text.find("[analyze: ");
  ASSERT_NE(verify_pos, std::string::npos) << text;
  ASSERT_NE(analyze_pos, std::string::npos) << text;
  EXPECT_LT(verify_pos, analyze_pos) << text;
}

TEST_F(ObsAnalyzeTest, AnalyzeResultMatchesPlainExecution) {
  const std::string q = "SELECT b, a FROM t WHERE b > 10 ORDER BY b";
  ASSERT_OK_AND_ASSIGN(ResultSet plain, db_.Execute(q));
  ASSERT_OK_AND_ASSIGN(auto sel, sql::ParseSelect(q));
  ResultSet analyzed;
  ASSERT_OK(db_.ExplainAnalyzeSelect(*sel, nullptr, &analyzed));
  EXPECT_EQ(CanonRows(analyzed.rows), CanonRows(plain.rows));
  EXPECT_EQ(analyzed.column_names, plain.column_names);
}

TEST_F(ObsAnalyzeTest, ProfileExecutionKnobKeepsResultsIdentical) {
  const std::string q = "SELECT a, b FROM t WHERE a >= 2 ORDER BY a";
  ASSERT_OK_AND_ASSIGN(ResultSet off, db_.Execute(q));
  db_.set_profile_execution(true);
  ASSERT_OK_AND_ASSIGN(ResultSet on, db_.Execute(q));
  db_.set_profile_execution(false);
  EXPECT_EQ(CanonRows(on.rows), CanonRows(off.rows));
}

TEST_F(ObsAnalyzeTest, DumpMetricsRendersEngineCounters) {
  obs::MetricsRegistry::Global()->ResetForTesting();
  ASSERT_OK(db_.Execute("SELECT COUNT(*) FROM t"));
  const std::string text = db_.DumpMetrics();
  EXPECT_NE(text.find("# TYPE mtbase_engine_statements_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mtbase_engine_statements_total 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE mtbase_engine_execute_seconds histogram\n"),
            std::string::npos)
      << text;
  EXPECT_EQ(
      obs::MetricsRegistry::Global()->HistogramCount(
          "mtbase_engine_execute_seconds"),
      1u);
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
