// PlanVerifier behavior at the engine level: structural and parallel-safety
// invariants, tenant-isolation slot-dominance analysis under a manual
// VerifyContext, the enforcement gate (MTBASE_VERIFY_PLANS), the EXPLAIN
// (VERIFY) annotation and the ExecStats counters. The negative cases break
// plans through the test mutation hook (or build broken plans by hand) and
// assert each violation class is caught with its machine-readable code.
#include <cstdlib>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/explain.h"
#include "engine/verify/mutators.h"
#include "engine/verify/verifier.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

/// Force enforcement on for a test's lifetime (the default build is NDEBUG,
/// where verification is opt-in), restoring the previous value after.
class ScopedVerifyEnv {
 public:
  explicit ScopedVerifyEnv(const char* value) {
    const char* old = std::getenv("MTBASE_VERIFY_PLANS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv("MTBASE_VERIFY_PLANS", value, 1);
  }
  ~ScopedVerifyEnv() {
    if (had_) {
      setenv("MTBASE_VERIFY_PLANS", saved_.c_str(), 1);
    } else {
      unsetenv("MTBASE_VERIFY_PLANS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE acc (ttid INTEGER NOT NULL, id INTEGER NOT NULL, "
        "balance INTEGER NOT NULL)"));
    Table* t = db_.catalog()->FindTable("acc");
    for (int64_t ttid = 1; ttid <= 3; ++ttid) {
      for (int64_t i = 0; i < 4; ++i) {
        ASSERT_OK(t->Insert(
            {Value::Int(ttid), Value::Int(ttid * 10 + i), Value::Int(i * 7)}));
      }
    }
  }

  /// Tenant checking on: "acc" is tenant-specific, D' = {1, 2}.
  verify::VerifyContext TenantCtx() {
    verify::VerifyContext ctx;
    ctx.check_tenant = true;
    ctx.tenant_tables = {"acc"};
    ctx.expected_tenants = {1, 2};
    return ctx;
  }

  Database db_;
};

TEST_F(VerifyTest, CleanPlansPassAndAreCounted) {
  ScopedVerifyEnv env("1");
  StatsScope stats(db_.stats());
  ASSERT_OK_AND_ASSIGN(auto rs,
                       db_.Execute("SELECT id FROM acc WHERE balance > 0"));
  EXPECT_FALSE(rs.rows.empty());
  EXPECT_GT(stats.Delta().plans_verified, 0u);
  EXPECT_EQ(stats.Delta().verify_violations, 0u);
}

// Regression (found by ASan): verifying a statement that calls a UDF whose
// body plan was staled by DDL must replan the body first, not walk a plan
// holding dangling catalog pointers.
TEST_F(VerifyTest, StaleUdfBodyReplannedBeforeVerification) {
  ScopedVerifyEnv env("1");
  ASSERT_OK(db_.Execute("CREATE FUNCTION maxid (INTEGER) RETURNS INTEGER AS "
                        "'SELECT MAX(id) FROM acc WHERE ttid = $1' "
                        "LANGUAGE SQL IMMUTABLE")
                .status());
  ASSERT_OK(db_.Execute("SELECT maxid(1)").status());
  // DROP + CREATE relocates the table the body reads; the next compile
  // verifies (and therefore walks) the body before any execute-path refresh.
  ASSERT_OK(db_.Execute("DROP TABLE acc").status());
  ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE acc (ttid INTEGER NOT NULL, id INTEGER NOT NULL, "
      "balance INTEGER NOT NULL); INSERT INTO acc VALUES (1, 42, 0)"));
  ASSERT_OK_AND_ASSIGN(auto rs, db_.Execute("SELECT maxid(1)"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 42);
}

TEST_F(VerifyTest, DisabledByZeroEnv) {
  ScopedVerifyEnv env("0");
  StatsScope stats(db_.stats());
  ASSERT_OK(db_.Execute("SELECT id FROM acc").status());
  EXPECT_EQ(stats.Delta().plans_verified, 0u);
}

TEST_F(VerifyTest, BrokenSortKeyRefused) {
  ScopedVerifyEnv env("1");
  db_.set_plan_mutation_hook_for_testing([](Plan* p) {
    EXPECT_TRUE(verify::BreakFirstSortKey(p));
  });
  StatsScope stats(db_.stats());
  auto r = db_.Execute("SELECT id FROM acc ORDER BY balance");
  db_.set_plan_mutation_hook_for_testing(nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("SORT_KEY_OUT_OF_RANGE"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_GT(stats.Delta().verify_violations, 0u);
}

TEST_F(VerifyTest, MislabeledSerialOperatorRefused) {
  ScopedVerifyEnv env("1");
  // A bare LIMIT (no ORDER BY, so no top-N fusion) is a serial-only
  // operator: flipping its parallel_safe flag must trip the independent
  // restatement of the safety rules.
  db_.set_plan_mutation_hook_for_testing([](Plan* p) {
    EXPECT_TRUE(verify::MislabelFirstSerialNode(p));
  });
  auto r = db_.Execute("SELECT id FROM acc LIMIT 2 OFFSET 1");
  db_.set_plan_mutation_hook_for_testing(nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("PARALLEL_UNSAFE_SUBPLAN"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(VerifyTest, UnfilteredTenantScanRefused) {
  ScopedVerifyEnv env("1");
  db_.set_verify_context(TenantCtx());
  auto r = db_.Execute("SELECT id FROM acc");
  db_.set_verify_context(verify::VerifyContext());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("TENANT_PREDICATE_MISSING"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(VerifyTest, DominatingTenantPredicateAccepted) {
  ScopedVerifyEnv env("1");
  db_.set_verify_context(TenantCtx());
  // Both D-filter shapes the rewriter emits: IN list and equality.
  EXPECT_OK(db_.Execute("SELECT id FROM acc WHERE ttid IN (1, 2)").status());
  EXPECT_OK(db_.Execute("SELECT id FROM acc WHERE ttid = 1 AND balance > 0")
                .status());
  db_.set_verify_context(verify::VerifyContext());
}

TEST_F(VerifyTest, SupersetTenantPredicateRefused) {
  ScopedVerifyEnv env("1");
  db_.set_verify_context(TenantCtx());
  // ttid 3 exists in the data but is outside the expected dataset {1, 2}.
  auto r = db_.Execute("SELECT id FROM acc WHERE ttid IN (1, 3)");
  db_.set_verify_context(verify::VerifyContext());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("TENANT_SET_MISMATCH"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(VerifyTest, TtidEquiJoinTransfersRestriction) {
  ScopedVerifyEnv env("1");
  db_.set_verify_context(TenantCtx());
  // Only one side carries the D-filter; the ttid equi-join key propagates
  // the restriction to the other side (the rewriter's ttid-join pattern).
  EXPECT_OK(db_.Execute("SELECT a.id, b.id FROM acc a, acc b "
                        "WHERE a.ttid = b.ttid AND a.ttid IN (1, 2) "
                        "AND a.id = b.id")
                .status());
  db_.set_verify_context(verify::VerifyContext());
}

TEST_F(VerifyTest, AllowUnfilteredAdmitsBareScans) {
  ScopedVerifyEnv env("1");
  verify::VerifyContext ctx = TenantCtx();
  ctx.allow_unfiltered = true;  // o1 elided the D-filters: D' = all tenants
  db_.set_verify_context(ctx);
  StatsScope stats(db_.stats());
  EXPECT_OK(db_.Execute("SELECT id FROM acc").status());
  EXPECT_EQ(stats.Delta().verify_violations, 0u);
  db_.set_verify_context(verify::VerifyContext());
}

TEST_F(VerifyTest, StrippedTenantPredicateCaught) {
  ScopedVerifyEnv env("1");
  db_.set_verify_context(TenantCtx());
  int stripped = 0;
  db_.set_plan_mutation_hook_for_testing([&stripped](Plan* p) {
    stripped += verify::StripTenantPredicates(p, "ttid");
  });
  auto r = db_.Execute("SELECT id FROM acc WHERE ttid IN (1, 2)");
  db_.set_plan_mutation_hook_for_testing(nullptr);
  db_.set_verify_context(verify::VerifyContext());
  EXPECT_GT(stripped, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("TENANT_PREDICATE_MISSING"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(VerifyTest, ExplainVerifyAnnotation) {
  verify::VerifyContext ctx = TenantCtx();
  ASSERT_OK_AND_ASSIGN(sql::Stmt ok_stmt,
                       sql::ParseStatement(
                           "SELECT id FROM acc WHERE ttid IN (1, 2)"));
  ASSERT_OK_AND_ASSIGN(
      std::string text,
      ExplainSelect(db_.catalog(), db_.udfs(), *ok_stmt.select,
                    db_.planner_options(), &ctx));
  EXPECT_NE(text.find("[verify: ok]"), std::string::npos) << text;

  ASSERT_OK_AND_ASSIGN(sql::Stmt bad_stmt,
                       sql::ParseStatement("SELECT id FROM acc"));
  ASSERT_OK_AND_ASSIGN(
      text, ExplainSelect(db_.catalog(), db_.udfs(), *bad_stmt.select,
                          db_.planner_options(), &ctx));
  EXPECT_NE(text.find("[verify: FAILED TENANT_PREDICATE_MISSING]"),
            std::string::npos)
      << text;
}

// Structural checks over hand-built plans: these shapes cannot come out of
// the planner, so the verifier is driven directly.
TEST(VerifyStructuralTest, HandBuiltViolations) {
  verify::PlanVerifier verifier;

  // Projection referencing a slot past its input layout.
  {
    auto scan = std::make_unique<Plan>();
    scan->kind = Plan::Kind::kScan;  // dual scan: no table, zero columns
    Plan project;
    project.kind = Plan::Kind::kProject;
    project.columns = {{"", "x"}};
    auto e = std::make_unique<BoundExpr>();
    e->kind = BoundExpr::Kind::kSlot;
    e->slot = 5;
    project.exprs.push_back(std::move(e));
    project.left = std::move(scan);
    verify::VerifyResult r = verifier.Verify(project);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.violations[0].code, verify::ViolationCode::kSlotOutOfRange);
    EXPECT_NE(r.Summary().find("SLOT_OUT_OF_RANGE"), std::string::npos);
  }

  // Join with unpaired key lists.
  {
    Plan join;
    join.kind = Plan::Kind::kJoin;
    join.left = std::make_unique<Plan>();
    join.right = std::make_unique<Plan>();
    auto k = std::make_unique<BoundExpr>();
    k->kind = BoundExpr::Kind::kSlot;
    join.left_keys.push_back(std::move(k));
    verify::VerifyResult r = verifier.Verify(join);
    ASSERT_FALSE(r.ok());
    bool found = false;
    for (const auto& v : r.violations) {
      found |= v.code == verify::ViolationCode::kJoinKeyMismatch;
    }
    EXPECT_TRUE(found) << r.Message();
  }

  // Negative LIMIT.
  {
    Plan limit;
    limit.kind = Plan::Kind::kLimit;
    limit.left = std::make_unique<Plan>();
    limit.limit = -7;
    verify::VerifyResult r = verifier.Verify(limit);
    ASSERT_FALSE(r.ok());
    bool found = false;
    for (const auto& v : r.violations) {
      found |= v.code == verify::ViolationCode::kNegativeLimit;
    }
    EXPECT_TRUE(found) << r.Message();
  }

  // Aggregate output arity disagreeing with keys + aggregates.
  {
    Plan agg;
    agg.kind = Plan::Kind::kAggregate;
    agg.left = std::make_unique<Plan>();
    agg.columns = {{"", "a"}, {"", "b"}, {"", "c"}};
    agg.aggs.emplace_back();  // COUNT(*), one output — three promised
    verify::VerifyResult r = verifier.Verify(agg);
    ASSERT_FALSE(r.ok());
    bool found = false;
    for (const auto& v : r.violations) {
      found |= v.code == verify::ViolationCode::kArityMismatch;
    }
    EXPECT_TRUE(found) << r.Message();
  }
}

// Violation rendering: the refusal message carries the code and the
// offending subtree in EXPLAIN grammar.
TEST_F(VerifyTest, ViolationCarriesExplainSubtree) {
  verify::VerifyContext ctx = TenantCtx();
  verify::PlanVerifier verifier(&ctx);
  ASSERT_OK_AND_ASSIGN(sql::Stmt stmt,
                       sql::ParseStatement("SELECT id FROM acc"));
  Planner planner(db_.catalog(), db_.udfs(), db_.planner_options());
  ASSERT_OK_AND_ASSIGN(PlanPtr plan, planner.PlanSelect(*stmt.select));
  verify::VerifyResult r = verifier.Verify(*plan);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations[0].code,
            verify::ViolationCode::kTenantPredicateMissing);
  EXPECT_NE(r.violations[0].subtree.find("Scan acc"), std::string::npos)
      << r.violations[0].subtree;
  EXPECT_NE(r.Message().find("TENANT_PREDICATE_MISSING"), std::string::npos);
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
