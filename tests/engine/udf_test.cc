#include <gtest/gtest.h>

#include "engine/database.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

constexpr const char* kSetup = R"(
  CREATE TABLE rates (k INTEGER NOT NULL, r DECIMAL(15,6) NOT NULL);
  INSERT INTO rates VALUES (1, 1.0), (2, 2.0), (3, 0.5);
  CREATE FUNCTION conv (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
    AS 'SELECT r * $1 FROM rates WHERE k = $2' LANGUAGE SQL IMMUTABLE;
  CREATE FUNCTION volatileconv (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
    AS 'SELECT r * $1 FROM rates WHERE k = $2' LANGUAGE SQL;
  CREATE TABLE v (x DECIMAL(15,2) NOT NULL, k INTEGER NOT NULL);
  INSERT INTO v VALUES (10.00, 1), (10.00, 2), (10.00, 2), (20.00, 3);
)";

TEST(UdfTest, BodyExecutesSqlWithParams) {
  Database db;
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK_AND_ASSIGN(auto rs, db.Execute("SELECT conv(10.00, 2)"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 20.0);
}

TEST(UdfTest, EmptyBodyResultIsNull) {
  Database db;
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK_AND_ASSIGN(auto rs, db.Execute("SELECT conv(10.00, 99)"));
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

TEST(UdfTest, UnknownFunctionRejected) {
  Database db;
  ASSERT_OK(db.ExecuteScript(kSetup));
  EXPECT_FALSE(db.Execute("SELECT nosuch(1)").ok());
  EXPECT_FALSE(db.Execute("SELECT conv(1)").ok());  // arity
}

TEST(UdfTest, PostgresProfileCachesImmutableResults) {
  Database db(DbmsProfile::kPostgres);
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute("SELECT conv(x, k) FROM v").status());
  // Four rows, but (10.00, 2) repeats -> 3 body executions, 1 cache hit.
  EXPECT_EQ(db.stats()->udf_calls, 3u);
  EXPECT_EQ(db.stats()->udf_cache_hits, 1u);
}

TEST(UdfTest, SystemCProfileNeverCaches) {
  Database db(DbmsProfile::kSystemC);
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute("SELECT conv(x, k) FROM v").status());
  EXPECT_EQ(db.stats()->udf_calls, 4u);
  EXPECT_EQ(db.stats()->udf_cache_hits, 0u);
}

TEST(UdfTest, NonImmutableNeverCachedEvenOnPostgres) {
  Database db(DbmsProfile::kPostgres);
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute("SELECT volatileconv(x, k) FROM v").status());
  EXPECT_EQ(db.stats()->udf_calls, 4u);
}

TEST(UdfTest, CacheIsPerStatement) {
  Database db(DbmsProfile::kPostgres);
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute("SELECT conv(1.00, 1)").status());
  ASSERT_OK(db.Execute("SELECT conv(1.00, 1)").status());
  // Two statements, no shared cache: two body executions.
  EXPECT_EQ(db.stats()->udf_calls, 2u);
  EXPECT_EQ(db.stats()->udf_cache_hits, 0u);
}

TEST(UdfTest, ConstantArgsCachedAcrossRows) {
  Database db(DbmsProfile::kPostgres);
  ASSERT_OK(db.ExecuteScript(kSetup));
  // conv(5.00, 1) has constant args: one execution, N-1 hits. This is what
  // makes conversion push-up effective on PostgreSQL (paper section 6.2).
  ASSERT_OK(db.Execute("SELECT x FROM v WHERE x < conv(5000.00, 1)").status());
  EXPECT_EQ(db.stats()->udf_calls, 1u);
  EXPECT_EQ(db.stats()->udf_cache_hits, 3u);
}

TEST(UdfTest, UdfInsidePredicateAndProjection) {
  Database db;
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK_AND_ASSIGN(
      auto rs,
      db.Execute("SELECT SUM(conv(x, k)) FROM v WHERE conv(x, k) >= 10.00"));
  // values: 10, 20, 20, 10 -> all >= 10 -> sum 60.
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 60.0);
}

TEST(UdfTest, DuplicateRegistrationFails) {
  Database db;
  ASSERT_OK(db.ExecuteScript(kSetup));
  auto st = db.Execute(
      "CREATE FUNCTION conv (INTEGER) RETURNS INTEGER AS 'SELECT $1' "
      "LANGUAGE SQL");
  EXPECT_EQ(st.status().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
