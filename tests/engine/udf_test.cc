#include <gtest/gtest.h>

#include "engine/database.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

constexpr const char* kSetup = R"(
  CREATE TABLE rates (k INTEGER NOT NULL, r DECIMAL(15,6) NOT NULL);
  INSERT INTO rates VALUES (1, 1.0), (2, 2.0), (3, 0.5);
  CREATE FUNCTION conv (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
    AS 'SELECT r * $1 FROM rates WHERE k = $2' LANGUAGE SQL IMMUTABLE;
  CREATE FUNCTION volatileconv (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
    AS 'SELECT r * $1 FROM rates WHERE k = $2' LANGUAGE SQL;
  CREATE TABLE v (x DECIMAL(15,2) NOT NULL, k INTEGER NOT NULL);
  INSERT INTO v VALUES (10.00, 1), (10.00, 2), (10.00, 2), (20.00, 3);
)";

TEST(UdfTest, BodyExecutesSqlWithParams) {
  Database db;
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK_AND_ASSIGN(auto rs, db.Execute("SELECT conv(10.00, 2)"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 20.0);
}

TEST(UdfTest, EmptyBodyResultIsNull) {
  Database db;
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK_AND_ASSIGN(auto rs, db.Execute("SELECT conv(10.00, 99)"));
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

TEST(UdfTest, UnknownFunctionRejected) {
  Database db;
  ASSERT_OK(db.ExecuteScript(kSetup));
  EXPECT_FALSE(db.Execute("SELECT nosuch(1)").ok());
  EXPECT_FALSE(db.Execute("SELECT conv(1)").ok());  // arity
}

TEST(UdfTest, PostgresProfileCachesImmutableResults) {
  Database db(DbmsProfile::kPostgres);
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute("SELECT conv(x, k) FROM v").status());
  // Four rows, but (10.00, 2) repeats -> 3 body executions, 1 cache hit.
  EXPECT_EQ(db.stats()->udf_calls, 3u);
  EXPECT_EQ(db.stats()->udf_cache_hits, 1u);
}

TEST(UdfTest, SystemCProfileNeverCaches) {
  Database db(DbmsProfile::kSystemC);
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute("SELECT conv(x, k) FROM v").status());
  EXPECT_EQ(db.stats()->udf_calls, 4u);
  EXPECT_EQ(db.stats()->udf_cache_hits, 0u);
}

TEST(UdfTest, NonImmutableNeverCachedEvenOnPostgres) {
  Database db(DbmsProfile::kPostgres);
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute("SELECT volatileconv(x, k) FROM v").status());
  EXPECT_EQ(db.stats()->udf_calls, 4u);
}

TEST(UdfTest, CacheIsPerStatement) {
  Database db(DbmsProfile::kPostgres);
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute("SELECT conv(1.00, 1)").status());
  ASSERT_OK(db.Execute("SELECT conv(1.00, 1)").status());
  // Two statements, shared cache disabled (the engine default): two body
  // executions.
  EXPECT_EQ(db.stats()->udf_calls, 2u);
  EXPECT_EQ(db.stats()->udf_cache_hits, 0u);
}

TEST(UdfTest, SharedCacheServesAcrossStatements) {
  Database db(DbmsProfile::kPostgres);
  db.EnableSharedUdfCache();
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute("SELECT conv(1.00, 1)").status());
  ASSERT_OK(db.Execute("SELECT conv(1.00, 1)").status());
  EXPECT_EQ(db.stats()->udf_calls, 1u);
  EXPECT_EQ(db.stats()->udf_cache_hits, 1u);
  EXPECT_EQ(db.stats()->udf_shared_cache_hits, 1u);
  EXPECT_EQ(db.stats()->udf_cache_misses, 1u);
}

TEST(UdfTest, SharedCacheNeverUsedOnSystemC) {
  Database db(DbmsProfile::kSystemC);
  db.EnableSharedUdfCache();
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute("SELECT conv(1.00, 1)").status());
  ASSERT_OK(db.Execute("SELECT conv(1.00, 1)").status());
  EXPECT_EQ(db.stats()->udf_calls, 2u);
  EXPECT_EQ(db.stats()->udf_shared_cache_hits, 0u);
}

TEST(UdfTest, DmlOnBodyTablesEvictsSharedCache) {
  Database db(DbmsProfile::kPostgres);
  db.EnableSharedUdfCache();
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK_AND_ASSIGN(auto rs, db.Execute("SELECT conv(10.00, 2)"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 20.0);
  ASSERT_OK(db.Execute("UPDATE rates SET r = 3.0 WHERE k = 2").status());
  // The dictionary changed: the cached result must not be served.
  ASSERT_OK_AND_ASSIGN(rs, db.Execute("SELECT conv(10.00, 2)"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 30.0);
  EXPECT_EQ(db.stats()->udf_shared_cache_hits, 0u);
  EXPECT_EQ(db.stats()->udf_calls, 2u);
}

TEST(UdfTest, FailedUpdateLeavesTableAndCacheIntact) {
  Database db(DbmsProfile::kPostgres);
  db.EnableSharedUdfCache();
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK_AND_ASSIGN(auto rs, db.Execute("SELECT conv(10.00, 1)"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 10.0);
  // The k=1 row's assignment evaluates, then the k=2 row divides by zero:
  // the statement must fail without mutating any row (assignments are
  // evaluated for all rows before any is applied), and the cached result
  // stays valid.
  EXPECT_FALSE(db.Execute("UPDATE rates SET r = r / (k - 2)").ok());
  ASSERT_OK_AND_ASSIGN(rs, db.Execute("SELECT r FROM rates WHERE k = 1"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 1.0);
  ASSERT_OK_AND_ASSIGN(rs, db.Execute("SELECT conv(10.00, 1)"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 10.0);
  EXPECT_EQ(db.stats()->udf_shared_cache_hits, 1u);
}

TEST(UdfTest, FailedDeleteLeavesTableAndCacheIntact) {
  Database db(DbmsProfile::kPostgres);
  db.EnableSharedUdfCache();
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK_AND_ASSIGN(auto rs, db.Execute("SELECT conv(10.00, 1)"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 10.0);
  // k=1 evaluates (kept), k=2 divides by zero: the statement must fail
  // without mutating any row, and the cached result stays valid.
  EXPECT_FALSE(db.Execute("DELETE FROM rates WHERE r / (k - 2) > 0").ok());
  ASSERT_OK_AND_ASSIGN(rs, db.Execute("SELECT COUNT(*) FROM rates"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 3);
  ASSERT_OK_AND_ASSIGN(rs, db.Execute("SELECT conv(10.00, 1)"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 10.0);
  EXPECT_EQ(db.stats()->udf_shared_cache_hits, 1u);
}

TEST(UdfTest, EnableSharedUdfCacheIsIdempotent) {
  Database db(DbmsProfile::kPostgres);
  db.EnableSharedUdfCache(/*capacity=*/2);
  // A redundant enable (e.g. the Middleware constructor after the embedder
  // already configured the cache) keeps the existing capacity.
  db.EnableSharedUdfCache();
  EXPECT_EQ(db.shared_udf_cache()->capacity(), 2u);
}

TEST(UdfTest, SharedCacheLruBound) {
  Database db(DbmsProfile::kPostgres);
  db.EnableSharedUdfCache(/*capacity=*/2);
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute("SELECT conv(1.00, 1), conv(2.00, 1), conv(3.00, 1)")
                .status());
  EXPECT_EQ(db.shared_udf_cache()->size(), 2u);
  EXPECT_EQ(db.shared_udf_cache()->capacity(), 2u);
  // conv(1.00, 1) was evicted (least recently used): it re-executes, while
  // conv(3.00, 1) is still resident.
  StatsScope scope(db.stats());
  ASSERT_OK(db.Execute("SELECT conv(1.00, 1)").status());
  EXPECT_EQ(scope.Delta().udf_calls, 1u);
  scope.Restart();
  ASSERT_OK(db.Execute("SELECT conv(3.00, 1)").status());
  EXPECT_EQ(scope.Delta().udf_shared_cache_hits, 1u);
}

TEST(UdfTest, StableUdfCachedPerStatementNotShared) {
  Database db(DbmsProfile::kPostgres);
  db.EnableSharedUdfCache();
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK(db.Execute(
      "CREATE FUNCTION stableconv (DECIMAL(15,2), INTEGER) RETURNS "
      "DECIMAL(15,2) AS 'SELECT r * $1 FROM rates WHERE k = $2' "
      "LANGUAGE SQL STABLE").status());
  // Within one statement: cached like IMMUTABLE.
  ASSERT_OK(db.Execute("SELECT stableconv(x, k) FROM v").status());
  EXPECT_EQ(db.stats()->udf_calls, 3u);
  EXPECT_EQ(db.stats()->udf_cache_hits, 1u);
  // Across statements: STABLE only promises intra-statement stability, so
  // the shared cache is never consulted or populated.
  ASSERT_OK(db.Execute("SELECT stableconv(1.00, 1)").status());
  ASSERT_OK(db.Execute("SELECT stableconv(1.00, 1)").status());
  EXPECT_EQ(db.stats()->udf_shared_cache_hits, 0u);
  EXPECT_EQ(db.stats()->udf_calls, 5u);
}

TEST(UdfTest, ConstantArgsCachedAcrossRows) {
  Database db(DbmsProfile::kPostgres);
  ASSERT_OK(db.ExecuteScript(kSetup));
  // conv(5.00, 1) has constant args: one execution, N-1 hits. This is what
  // makes conversion push-up effective on PostgreSQL (paper section 6.2).
  ASSERT_OK(db.Execute("SELECT x FROM v WHERE x < conv(5000.00, 1)").status());
  EXPECT_EQ(db.stats()->udf_calls, 1u);
  EXPECT_EQ(db.stats()->udf_cache_hits, 3u);
}

TEST(UdfTest, UdfInsidePredicateAndProjection) {
  Database db;
  ASSERT_OK(db.ExecuteScript(kSetup));
  ASSERT_OK_AND_ASSIGN(
      auto rs,
      db.Execute("SELECT SUM(conv(x, k)) FROM v WHERE conv(x, k) >= 10.00"));
  // values: 10, 20, 20, 10 -> all >= 10 -> sum 60.
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), 60.0);
}

TEST(UdfTest, DuplicateRegistrationFails) {
  Database db;
  ASSERT_OK(db.ExecuteScript(kSetup));
  auto st = db.Execute(
      "CREATE FUNCTION conv (INTEGER) RETURNS INTEGER AS 'SELECT $1' "
      "LANGUAGE SQL");
  EXPECT_EQ(st.status().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
