// Decorrelation regression tests: a Q21-style correlated EXISTS/NOT EXISTS
// query must execute O(1) sub-query joins instead of O(outer rows) per-row
// sub-queries, and the decorrelated plans must produce byte-identical
// results to the per-row fallback (PlannerOptions::decorrelate_subqueries =
// false) on the same data.
#include <gtest/gtest.h>

#include <string>

#include "engine/database.h"
#include "engine/explain.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

/// Exact (structural) result equality: same shape, same values, same order.
void ExpectSameResults(const ResultSet& a, const ResultSet& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (size_t i = 0; i < a.rows.size(); ++i) {
    ASSERT_EQ(a.rows[i].size(), b.rows[i].size()) << "row " << i;
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      EXPECT_TRUE(a.rows[i][j].StructuralEquals(b.rows[i][j]))
          << "row " << i << " col " << j << ": " << a.rows[i][j].ToString()
          << " vs " << b.rows[i][j].ToString();
    }
  }
}

class SubqueryDecorrelationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(
                     "CREATE TABLE li (okey INTEGER, skey INTEGER, "
                     "late INTEGER)")
                  .status());
    // 40 orders x 3 suppliers; supplier (okey % 3) is late, and every
    // fourth order has a second late supplier.
    std::string insert = "INSERT INTO li VALUES ";
    for (int okey = 0; okey < 40; ++okey) {
      for (int skey = 0; skey < 3; ++skey) {
        bool late = skey == okey % 3 || (okey % 4 == 0 && skey == 2);
        if (okey != 0 || skey != 0) insert += ", ";
        insert += "(" + std::to_string(okey) + ", " + std::to_string(skey) +
                  ", " + std::to_string(late ? 1 : 0) + ")";
      }
    }
    ASSERT_OK(db_.Execute(insert).status());
  }

  Result<ResultSet> Run(const std::string& sql, bool decorrelate) {
    PlannerOptions opt;
    opt.decorrelate_subqueries = decorrelate;
    db_.set_planner_options(opt);
    StatsScope stats(db_.stats());
    auto r = db_.Execute(sql);
    run_stats_ = stats.Delta();
    return r;
  }

  Database db_;
  ExecStats run_stats_;  // delta of the last Run()
};

constexpr char kQ21Style[] =
    "SELECT skey, COUNT(*) AS numwait FROM li l1 "
    "WHERE l1.late = 1 "
    "  AND EXISTS (SELECT * FROM li l2 "
    "              WHERE l2.okey = l1.okey AND l2.skey <> l1.skey) "
    "  AND NOT EXISTS (SELECT * FROM li l3 "
    "                  WHERE l3.okey = l1.okey AND l3.skey <> l1.skey "
    "                    AND l3.late = 1) "
    "GROUP BY skey ORDER BY numwait DESC, skey";

TEST_F(SubqueryDecorrelationTest, Q21StyleExecutesConstantSubqueryJoins) {
  ASSERT_OK_AND_ASSIGN(ResultSet fast, Run(kQ21Style, true));
  // Decorrelated: both sub-queries became hash joins, executed once each.
  EXPECT_EQ(run_stats_.subquery_execs, 0u);
  EXPECT_EQ(run_stats_.decorrelated_execs, 2u);

  ASSERT_OK_AND_ASSIGN(ResultSet slow, Run(kQ21Style, false));
  // Fallback: each correlated sub-query runs once per outer row (the AND
  // short-circuits NOT EXISTS for some rows), so the count scales with the
  // table, not the query: 50 late line items -> 50 EXISTS + 44 NOT EXISTS.
  EXPECT_EQ(run_stats_.decorrelated_execs, 0u);
  EXPECT_EQ(run_stats_.subquery_execs, 94u);

  ExpectSameResults(fast, slow);
  EXPECT_FALSE(fast.rows.empty());
}

TEST_F(SubqueryDecorrelationTest, CorrelatedInMatchesFallback) {
  const std::string sql =
      "SELECT okey, skey FROM li l1 "
      "WHERE l1.skey IN (SELECT l2.skey FROM li l2 "
      "                  WHERE l2.okey = l1.okey AND l2.late = 1) "
      "ORDER BY okey, skey";
  ASSERT_OK_AND_ASSIGN(ResultSet fast, Run(sql, true));
  EXPECT_EQ(run_stats_.subquery_execs, 0u);
  ASSERT_OK_AND_ASSIGN(ResultSet slow, Run(sql, false));
  EXPECT_GT(run_stats_.subquery_execs, 0u);
  ExpectSameResults(fast, slow);
}

TEST_F(SubqueryDecorrelationTest, CorrelatedInWithResidualFallsBack) {
  // A non-equality correlated conjunct inside an IN sub-query cannot be
  // turned into a hash-join residual (the decorrelated projection lacks the
  // inner columns it references); it must take the per-row path and still
  // produce correct results.
  const std::string sql =
      "SELECT okey FROM li l1 "
      "WHERE l1.skey IN (SELECT l2.skey FROM li l2 WHERE l2.okey > l1.okey) "
      "  AND l1.okey >= 38 ORDER BY okey, skey";
  ASSERT_OK_AND_ASSIGN(ResultSet fast, Run(sql, true));
  EXPECT_GT(run_stats_.subquery_execs, 0u);  // fell back per-row
  ASSERT_OK_AND_ASSIGN(ResultSet slow, Run(sql, false));
  ExpectSameResults(fast, slow);
  EXPECT_FALSE(fast.rows.empty());
}

TEST_F(SubqueryDecorrelationTest, NotInWithInnerNullsMatchesFallback) {
  // x NOT IN (S) is never TRUE when S contains NULL: the decorrelated
  // anti join must be null-aware to keep parity with per-row evaluation.
  ASSERT_OK(db_.ExecuteScript(
                   "CREATE TABLE t (a INTEGER, g INTEGER);"
                   "CREATE TABLE s (b INTEGER, g INTEGER);"
                   "INSERT INTO t VALUES (1, 1), (2, 1), (3, 2), (NULL, 2);"
                   "INSERT INTO s VALUES (1, 1), (NULL, 1), (2, 2)")
                .status());
  const std::string sql =
      "SELECT a FROM t WHERE a NOT IN "
      "(SELECT b FROM s WHERE s.g = t.g) ORDER BY a";
  ASSERT_OK_AND_ASSIGN(ResultSet fast, Run(sql, true));
  EXPECT_EQ(run_stats_.subquery_execs, 0u);
  ASSERT_OK_AND_ASSIGN(ResultSet slow, Run(sql, false));
  EXPECT_GT(run_stats_.subquery_execs, 0u);
  ExpectSameResults(fast, slow);
  // g=1: inner set {1, NULL} filters both a=1 (match) and a=2 (NULL).
  // g=2: inner set {2} keeps a=3; a=NULL is filtered (NULL NOT IN {2}).
  ASSERT_EQ(fast.rows.size(), 1u);
  EXPECT_EQ(fast.rows[0][0].int_value(), 3);
}

TEST_F(SubqueryDecorrelationTest, ExplainShowsChosenStrategy) {
  ASSERT_OK_AND_ASSIGN(auto sel, sql::ParseSelect(kQ21Style));
  PlannerOptions decorr;
  ASSERT_OK_AND_ASSIGN(std::string fast,
                       ExplainSelect(db_.catalog(), db_.udfs(), *sel, decorr));
  EXPECT_NE(fast.find("[decorrelated EXISTS]"), std::string::npos) << fast;
  EXPECT_NE(fast.find("[decorrelated NOT EXISTS]"), std::string::npos) << fast;
  EXPECT_EQ(fast.find("SubPlan"), std::string::npos) << fast;

  PlannerOptions fallback;
  fallback.decorrelate_subqueries = false;
  ASSERT_OK_AND_ASSIGN(
      std::string slow,
      ExplainSelect(db_.catalog(), db_.udfs(), *sel, fallback));
  EXPECT_NE(slow.find("SubPlan (EXISTS, per-row)"), std::string::npos) << slow;
  EXPECT_NE(slow.find("SubPlan (NOT EXISTS, per-row)"), std::string::npos)
      << slow;
  EXPECT_EQ(slow.find("[decorrelated"), std::string::npos) << slow;
}

TEST_F(SubqueryDecorrelationTest, ExplainMarksNullAwareAntiJoin) {
  ASSERT_OK(db_.ExecuteScript(
                   "CREATE TABLE u (a INTEGER, g INTEGER);"
                   "CREATE TABLE v (b INTEGER, g INTEGER)")
                .status());
  ASSERT_OK_AND_ASSIGN(
      auto sel,
      sql::ParseSelect("SELECT a FROM u WHERE a NOT IN "
                       "(SELECT b FROM v WHERE v.g = u.g)"));
  ASSERT_OK_AND_ASSIGN(std::string plan,
                       ExplainSelect(db_.catalog(), db_.udfs(), *sel));
  EXPECT_NE(plan.find("[decorrelated NOT IN, null-aware]"), std::string::npos)
      << plan;
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
