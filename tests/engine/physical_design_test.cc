// Tenant-aware physical design at the engine level: ttid hash/list
// partitioning with planner pruning, ordered ttid-leading indexes with
// index-scan plans, EXPLAIN annotations, ExecStats counters, prepared-plan
// invalidation on physical DDL, atomic multi-row DML against derived
// physical state, and the verifier's partition-set-subset proof (with the
// widening mutator as the negative case).
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/catalog.h"
#include "engine/database.h"
#include "engine/explain.h"
#include "engine/verify/mutators.h"
#include "engine/verify/verifier.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

constexpr int kParts = 4;

class ScopedVerifyEnv {
 public:
  explicit ScopedVerifyEnv(const char* value) {
    const char* old = std::getenv("MTBASE_VERIFY_PLANS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv("MTBASE_VERIFY_PLANS", value, 1);
  }
  ~ScopedVerifyEnv() {
    if (had_) {
      setenv("MTBASE_VERIFY_PLANS", saved_.c_str(), 1);
    } else {
      unsetenv("MTBASE_VERIFY_PLANS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

/// Two copies of the same data: `part` is hash-partitioned on ttid and
/// carries a ttid-leading index, `flat` has no physical design. Every
/// positive test proves byte-identity between the two.
class PhysicalDesignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE part (ttid INTEGER NOT NULL, id INTEGER NOT NULL, "
        "v INTEGER NOT NULL) PARTITION BY HASH (ttid) PARTITIONS " +
        std::to_string(kParts) +
        ";"
        "CREATE TABLE flat (ttid INTEGER NOT NULL, id INTEGER NOT NULL, "
        "v INTEGER NOT NULL);"
        "CREATE INDEX part_ttid ON part (ttid, id)"));
    for (int64_t ttid = 1; ttid <= 5; ++ttid) {
      for (int64_t i = 0; i < 6; ++i) {
        std::string row = "(" + std::to_string(ttid) + ", " +
                          std::to_string(ttid * 100 + i) + ", " +
                          std::to_string((i * 37 + ttid) % 11) + ")";
        ASSERT_OK(db_.Execute("INSERT INTO part VALUES " + row).status());
        ASSERT_OK(db_.Execute("INSERT INTO flat VALUES " + row).status());
      }
    }
  }

  std::string Explain(const std::string& query) {
    auto sel = sql::ParseSelect(query);
    EXPECT_TRUE(sel.ok());
    auto r = ExplainSelect(db_.catalog(), db_.udfs(), *sel.value(),
                           db_.planner_options());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value() : "";
  }

  /// Run `query` against both copies (swap the table name) and assert
  /// byte-identical results; returns the partitioned run's stats delta.
  ExecStats AssertSameAsFlat(const std::string& query_on_part) {
    StatsScope scope(db_.stats());
    auto part = db_.Execute(query_on_part);
    EXPECT_OK(part.status());
    ExecStats delta = scope.Delta();
    std::string flat_q = query_on_part;
    size_t at = flat_q.find("FROM part");
    EXPECT_NE(at, std::string::npos) << query_on_part;
    flat_q.replace(at, 9, "FROM flat");
    auto flat = db_.Execute(flat_q);
    EXPECT_OK(flat.status());
    if (part.ok() && flat.ok()) {
      EXPECT_EQ(CanonRows(part.value().rows), CanonRows(flat.value().rows))
          << query_on_part;
    }
    return delta;
  }

  Database db_;
};

// -- storage ---------------------------------------------------------------

TEST_F(PhysicalDesignTest, PartitionRowsCoverEveryRowExactlyOnce) {
  Table* t = db_.catalog()->FindTable("part");
  ASSERT_NE(t, nullptr);
  ASSERT_TRUE(t->partition().partitioned());
  EXPECT_EQ(t->partition().Count(), kParts);
  const auto parts_ptr = t->PartitionRowsAt();
  const auto& parts = *parts_ptr;
  ASSERT_EQ(parts.size(), static_cast<size_t>(kParts));
  std::vector<bool> seen(t->rows().size(), false);
  for (const auto& ids : parts) {
    for (uint32_t id : ids) {
      ASSERT_LT(id, seen.size());
      EXPECT_FALSE(seen[id]) << "row " << id << " in two partitions";
      seen[id] = true;
      // Membership agrees with the routing function.
      EXPECT_EQ(t->partition().RouteValue(t->rows()[id][0]),
                static_cast<int>(&ids - parts.data()));
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST_F(PhysicalDesignTest, ListPartitioningRoutesOverflowToLastPartition) {
  ASSERT_OK(db_.Execute(
      "CREATE TABLE lp (k INTEGER NOT NULL) "
      "PARTITION BY LIST (k) (VALUES (1, 2), VALUES (3))").status());
  Table* t = db_.catalog()->FindTable("lp");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->partition().Count(), 3);  // 2 groups + overflow
  EXPECT_EQ(t->partition().RouteInt(2), 0);
  EXPECT_EQ(t->partition().RouteInt(3), 1);
  EXPECT_EQ(t->partition().RouteInt(99), 2);
  ASSERT_OK(db_.ExecuteScript(
      "INSERT INTO lp VALUES (1); INSERT INTO lp VALUES (3); "
      "INSERT INTO lp VALUES (42)"));
  const auto parts_ptr = t->PartitionRowsAt();
  const auto& parts = *parts_ptr;
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 1u);
  EXPECT_EQ(parts[1].size(), 1u);
  EXPECT_EQ(parts[2].size(), 1u);
}

TEST_F(PhysicalDesignTest, IndexOrderIsSortedWithInsertionOrderTieBreak) {
  Table* t = db_.catalog()->FindTable("part");
  ASSERT_NE(t, nullptr);
  const TableIndex* ix = t->FindIndex("part_ttid");
  ASSERT_NE(ix, nullptr);
  const auto order_ptr = t->IndexOrderAt(*ix);
  const auto& order = *order_ptr;
  ASSERT_EQ(order.size(), t->rows().size());
  for (size_t i = 1; i < order.size(); ++i) {
    const Row& a = t->rows()[order[i - 1]];
    const Row& b = t->rows()[order[i]];
    int c = IndexKeyCompare(a[0], b[0]);
    if (c == 0) c = IndexKeyCompare(a[1], b[1]);
    if (c == 0) {
      EXPECT_LT(order[i - 1], order[i]);  // stable tie-break
    } else {
      EXPECT_LT(c, 0);
    }
  }
}

// -- planner + executor ----------------------------------------------------

TEST_F(PhysicalDesignTest, EqualityPrunesToOnePartition) {
  ExecStats d = AssertSameAsFlat(
      "SELECT id, v FROM part WHERE ttid = 3 ORDER BY id");
  EXPECT_EQ(d.partitions_pruned, static_cast<uint64_t>(kParts - 1));
  EXPECT_EQ(d.index_scans, 0u);  // pruning wins over the index
  EXPECT_PLAN_SHAPE(
      Explain("SELECT id, v FROM part WHERE ttid = 3 ORDER BY id"),
      {"*Sort*",
       "*Scan part (filtered) [partitions: " + std::to_string(kParts - 1) +
           "/" + std::to_string(kParts) + " pruned]*"});
}

TEST_F(PhysicalDesignTest, InListPrunesToTheKeySetImage) {
  StatsScope scope(db_.stats());
  AssertSameAsFlat("SELECT id FROM part WHERE ttid IN (1, 4) ORDER BY id");
  // Two keys map to at most two partitions; at least kParts - 2 are pruned.
  EXPECT_GE(scope.Delta().partitions_pruned,
            static_cast<uint64_t>(kParts - 2));
}

TEST_F(PhysicalDesignTest, ResidualConjunctsSurvivePruning) {
  // The ttid conjunct prunes; v = 5 must still filter candidate rows.
  ExecStats d = AssertSameAsFlat(
      "SELECT id FROM part WHERE ttid = 2 AND v > 4 ORDER BY id");
  EXPECT_EQ(d.partitions_pruned, static_cast<uint64_t>(kParts - 1));
}

TEST_F(PhysicalDesignTest, IndexScanServesNonPartitionEquality) {
  ASSERT_OK(db_.Execute("CREATE INDEX part_id ON part (id)").status());
  ExecStats d = AssertSameAsFlat("SELECT v FROM part WHERE id = 304");
  EXPECT_EQ(d.index_scans, 1u);
  EXPECT_GT(d.index_rows_skipped, 0u);
  EXPECT_PLAN_SHAPE(Explain("SELECT v FROM part WHERE id = 304"),
                    {"*IndexScan part (filtered) [index scan: part_id, "
                     "id = 304]*"});
}

TEST_F(PhysicalDesignTest, IndexScanServesInListOnUnpartitionedTable) {
  ASSERT_OK(db_.Execute("CREATE INDEX flat_ttid ON flat (ttid)").status());
  StatsScope scope(db_.stats());
  ASSERT_OK_AND_ASSIGN(
      auto rs,
      db_.Execute("SELECT id FROM flat WHERE ttid IN (2, 4) ORDER BY id"));
  EXPECT_EQ(rs.rows.size(), 12u);
  EXPECT_EQ(scope.Delta().index_scans, 1u);
  EXPECT_PLAN_SHAPE(
      Explain("SELECT id FROM flat WHERE ttid IN (2, 4) ORDER BY id"),
      {"*IndexScan flat (filtered) [index scan: flat_ttid, "
       "ttid IN (2, 4)]*"});
}

TEST_F(PhysicalDesignTest, AccessPathsOffKeepsFullScans) {
  PlannerOptions opts = db_.planner_options();
  opts.physical_access_paths = false;
  db_.set_planner_options(opts);
  ExecStats d = AssertSameAsFlat("SELECT id FROM part WHERE ttid = 3");
  EXPECT_EQ(d.partitions_pruned, 0u);
  EXPECT_EQ(d.index_scans, 0u);
  std::string plan = Explain("SELECT id FROM part WHERE ttid = 3");
  EXPECT_EQ(plan.find("[partitions:"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("IndexScan"), std::string::npos) << plan;
}

TEST_F(PhysicalDesignTest, DroppedIndexFallsBackToFullScan) {
  ASSERT_OK(db_.Execute("CREATE INDEX flat_id ON flat (id)").status());
  {
    StatsScope scope(db_.stats());
    ASSERT_OK(db_.Execute("SELECT v FROM flat WHERE id = 104").status());
    EXPECT_EQ(scope.Delta().index_scans, 1u);
  }
  ASSERT_OK(db_.Execute("DROP INDEX flat_id").status());
  StatsScope scope(db_.stats());
  ASSERT_OK(db_.Execute("SELECT v FROM flat WHERE id = 104").status());
  EXPECT_EQ(scope.Delta().index_scans, 0u);
}

TEST_F(PhysicalDesignTest, CreateIndexInvalidatesPreparedPlans) {
  ASSERT_OK_AND_ASSIGN(PreparedPlan prep,
                       db_.Prepare("SELECT v FROM flat WHERE id = 203"));
  {
    StatsScope scope(db_.stats());
    ASSERT_OK(prep.Execute().status());
    EXPECT_EQ(scope.Delta().index_scans, 0u);  // compiled without an index
  }
  ASSERT_OK(db_.Execute("CREATE INDEX flat_id ON flat (id)").status());
  StatsScope scope(db_.stats());
  ASSERT_OK_AND_ASSIGN(auto rs, prep.Execute());
  // The catalog version moved: the handle recompiled and found the index.
  EXPECT_EQ(scope.Delta().index_scans, 1u);
  EXPECT_EQ(rs.rows.size(), 1u);
}

// -- DML against derived physical state ------------------------------------

TEST_F(PhysicalDesignTest, AbortedMultiRowInsertLeavesTableUnchanged) {
  Table* t = db_.catalog()->FindTable("part");
  const size_t before = t->rows().size();
  const uint64_t version = t->data_version();
  // Row 1 is fine; row 2 violates NOT NULL. Nothing may be applied.
  auto r = db_.Execute("INSERT INTO part VALUES (1, 900, 1), (NULL, 901, 2)");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(t->rows().size(), before);
  EXPECT_EQ(t->data_version(), version);
  // Derived physical state is trivially consistent: same coverage as before.
  size_t covered = 0;
  for (const auto& ids : *t->PartitionRowsAt()) covered += ids.size();
  EXPECT_EQ(covered, before);
  ASSERT_OK_AND_ASSIGN(auto rs,
                       db_.Execute("SELECT id FROM part WHERE id = 900"));
  EXPECT_TRUE(rs.rows.empty());
}

TEST_F(PhysicalDesignTest, UpdateMovesRowsAcrossPartitions) {
  // Move tenant 5's rows to tenant 1: pruned scans must see them under the
  // new key and not under the old one (stale partition lists would fail
  // byte-identity against the flat copy).
  ASSERT_OK(db_.Execute("UPDATE part SET ttid = 1 WHERE ttid = 5").status());
  ASSERT_OK(db_.Execute("UPDATE flat SET ttid = 1 WHERE ttid = 5").status());
  AssertSameAsFlat("SELECT id, v FROM part WHERE ttid = 1 ORDER BY id");
  ASSERT_OK_AND_ASSIGN(auto gone,
                       db_.Execute("SELECT id FROM part WHERE ttid = 5"));
  EXPECT_TRUE(gone.rows.empty());
  ASSERT_OK(db_.Execute("DELETE FROM part WHERE ttid = 1").status());
  ASSERT_OK(db_.Execute("DELETE FROM flat WHERE ttid = 1").status());
  AssertSameAsFlat("SELECT id, v FROM part WHERE ttid IN (1, 2) ORDER BY id");
}

// -- verifier ---------------------------------------------------------------

verify::VerifyContext TenantCtx() {
  verify::VerifyContext ctx;
  ctx.check_tenant = true;
  ctx.tenant_tables = {"part"};
  ctx.expected_tenants = {3};
  return ctx;
}

TEST_F(PhysicalDesignTest, VerifierAcceptsPrunedScanInsideTenantImage) {
  ScopedVerifyEnv env("1");
  db_.set_verify_context(TenantCtx());
  StatsScope scope(db_.stats());
  ASSERT_OK_AND_ASSIGN(
      auto rs, db_.Execute("SELECT id FROM part WHERE ttid = 3 ORDER BY id"));
  EXPECT_EQ(rs.rows.size(), 6u);
  EXPECT_GT(scope.Delta().plans_verified, 0u);
  EXPECT_EQ(scope.Delta().verify_violations, 0u);
}

TEST_F(PhysicalDesignTest, VerifierRefusesWidenedPartitionSet) {
  ScopedVerifyEnv env("1");
  db_.set_verify_context(TenantCtx());
  db_.set_plan_mutation_hook_for_testing(
      [](Plan* plan) { verify::WidenPartitionPruning(plan); });
  auto r = db_.Execute("SELECT id FROM part WHERE ttid = 3");
  db_.set_plan_mutation_hook_for_testing(nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("PARTITION_SET_MISMATCH"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(PhysicalDesignTest, VerifierRefusesOutOfRangePartition) {
  ScopedVerifyEnv env("1");
  db_.set_verify_context(TenantCtx());
  db_.set_plan_mutation_hook_for_testing([](Plan* plan) {
    Plan* node = plan;
    while (node != nullptr && node->kind != Plan::Kind::kScan) {
      node = node->left.get();
    }
    if (node != nullptr && node->pruned) {
      node->partitions = {static_cast<uint32_t>(kParts)};  // one past the end
    }
  });
  auto r = db_.Execute("SELECT id FROM part WHERE ttid = 3");
  db_.set_plan_mutation_hook_for_testing(nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("PARTITION_SET_MISMATCH"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(PhysicalDesignTest, VerifierRefusesParallelMarkedIndexScan) {
  ScopedVerifyEnv env("1");
  ASSERT_OK(db_.Execute("CREATE INDEX flat_id ON flat (id)").status());
  db_.set_plan_mutation_hook_for_testing([](Plan* plan) {
    Plan* node = plan;
    while (node != nullptr && node->kind != Plan::Kind::kIndexScan) {
      node = node->left.get();
    }
    if (node != nullptr) node->parallel_safe = true;
  });
  auto r = db_.Execute("SELECT v FROM flat WHERE id = 104");
  db_.set_plan_mutation_hook_for_testing(nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("PARALLEL_UNSAFE_SUBPLAN"),
            std::string::npos)
      << r.status().ToString();
}

// -- DDL validation ---------------------------------------------------------

TEST_F(PhysicalDesignTest, PartitionColumnMustExistAndBeInteger) {
  EXPECT_FALSE(db_.Execute("CREATE TABLE bad1 (a INTEGER) "
                           "PARTITION BY HASH (missing) PARTITIONS 4")
                   .ok());
  EXPECT_FALSE(db_.Execute("CREATE TABLE bad2 (a VARCHAR(8)) "
                           "PARTITION BY HASH (a) PARTITIONS 4")
                   .ok());
}

TEST_F(PhysicalDesignTest, IndexDdlValidatesNamesAndColumns) {
  EXPECT_FALSE(db_.Execute("CREATE INDEX ix ON missing (a)").ok());
  EXPECT_FALSE(db_.Execute("CREATE INDEX ix ON flat (missing)").ok());
  ASSERT_OK(db_.Execute("CREATE INDEX ix ON flat (id)").status());
  EXPECT_FALSE(db_.Execute("CREATE INDEX ix ON flat (v)").ok());  // duplicate
  EXPECT_FALSE(db_.Execute("DROP INDEX missing").ok());
  ASSERT_OK(db_.Execute("DROP INDEX ix").status());
  // Dropping the table unregisters its indexes' names.
  ASSERT_OK(db_.Execute("CREATE INDEX ix2 ON flat (id)").status());
  ASSERT_OK(db_.Execute("DROP TABLE flat").status());
  EXPECT_FALSE(db_.Execute("DROP INDEX ix2").ok());
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
