// TaskPool unit tests: lazy startup, thread reuse across statements, on-demand
// growth and exception propagation back to the calling thread.
#include "engine/parallel/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace mtbase {
namespace engine {
namespace parallel {
namespace {

TEST(TaskPoolTest, StartsNoThreadsUntilFirstParallelRun) {
  TaskPool pool;
  EXPECT_EQ(pool.spawned_threads(), 0);
  int ran_worker = -1;
  pool.Run(1, [&](int w) { ran_worker = w; });
  EXPECT_EQ(ran_worker, 0);
  // A serial run executes inline and never touches the pool.
  EXPECT_EQ(pool.spawned_threads(), 0);
}

TEST(TaskPoolTest, RunsEveryWorkerExactlyOnce) {
  TaskPool pool;
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h = 0;
  pool.Run(4, [&](int w) { hits[static_cast<size_t>(w)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.spawned_threads(), 3);  // worker 0 is the calling thread
}

TEST(TaskPoolTest, ReusesThreadsAcrossStatementsAndGrowsOnDemand) {
  TaskPool pool;
  std::atomic<int> count{0};
  pool.Run(3, [&](int) { count++; });
  EXPECT_EQ(pool.spawned_threads(), 2);
  pool.Run(3, [&](int) { count++; });
  EXPECT_EQ(pool.spawned_threads(), 2);  // reused, not respawned
  pool.Run(5, [&](int) { count++; });
  EXPECT_EQ(pool.spawned_threads(), 4);  // grew to the larger budget
  EXPECT_EQ(count.load(), 11);
}

TEST(TaskPoolTest, WorkerExceptionPropagatesToCaller) {
  TaskPool pool;
  EXPECT_THROW(pool.Run(4,
                        [](int w) {
                          if (w == 2) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool stays usable after a failed region.
  std::atomic<int> count{0};
  pool.Run(4, [&](int) { count++; });
  EXPECT_EQ(count.load(), 4);
}

TEST(TaskPoolTest, CallerExceptionPropagatesToo) {
  TaskPool pool;
  EXPECT_THROW(pool.Run(2,
                        [](int w) {
                          if (w == 0) throw std::runtime_error("caller boom");
                        }),
               std::runtime_error);
}

TEST(TaskPoolTest, GlobalPoolIsAProcessSingleton) {
  EXPECT_EQ(TaskPool::Global(), TaskPool::Global());
}

}  // namespace
}  // namespace parallel
}  // namespace engine
}  // namespace mtbase
