// Sort / top-N semantics: stability, NULL ordering, multi-key sorts,
// LIMIT/OFFSET edges, and the two byte-parity guarantees the parallel sort
// subsystem makes (sort.cc): parallel == serial, and top-N == full sort +
// LIMIT/OFFSET.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

std::string Canon(const ResultSet& rs) { return CanonRows(rs.rows); }

class SortTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      CREATE TABLE t (k INTEGER, seq INTEGER NOT NULL, s VARCHAR(10));
      INSERT INTO t VALUES (2, 0, 'b'), (1, 1, 'a'), (2, 2, 'c'),
                           (NULL, 3, 'n1'), (1, 4, 'd'), (NULL, 5, 'n2'),
                           (3, 6, 'e'), (2, 7, 'f');
    )"));
  }

  std::vector<Row> Rows(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
    return r.ok() ? r.value().rows : std::vector<Row>{};
  }

  /// seq column of the result, as a compact signature of the row order.
  std::string SeqOrder(const std::string& sql) {
    std::string out;
    for (const Row& r : Rows(sql)) {
      out += r[1].ToString();
      out += ',';
    }
    return out;
  }

  void SetParallelism(int max_threads, size_t min_rows) {
    PlannerOptions opts = db_.planner_options();
    opts.max_threads = max_threads;
    opts.min_parallel_rows = min_rows;
    db_.set_planner_options(opts);
  }

  Database db_;
};

TEST_F(SortTest, StableSortPreservesInputOrderOnTies) {
  // Three k=2 rows were inserted as seq 0, 2, 7: a stable sort must keep
  // that order within the tie group.
  EXPECT_EQ(SeqOrder("SELECT k, seq FROM t ORDER BY k"),
            "1,4,0,2,7,6,3,5,");
}

TEST_F(SortTest, NullsSortLastAscendingFirstDescending) {
  EXPECT_EQ(SeqOrder("SELECT k, seq FROM t ORDER BY k ASC"),
            "1,4,0,2,7,6,3,5,");
  // DESC negates the comparison, so the NULL group leads (input order
  // within it preserved).
  EXPECT_EQ(SeqOrder("SELECT k, seq FROM t ORDER BY k DESC"),
            "3,5,6,0,2,7,1,4,");
}

TEST_F(SortTest, MultiKeySort) {
  // Primary DESC, secondary ASC: within k=2, order by s ascending.
  EXPECT_EQ(SeqOrder("SELECT k, seq FROM t ORDER BY k DESC, s ASC"),
            "3,5,6,0,2,7,1,4,");
  EXPECT_EQ(SeqOrder("SELECT k, seq FROM t ORDER BY s DESC"),
            "5,3,7,6,4,2,0,1,");
}

TEST_F(SortTest, LimitZeroAndOffsetEdges) {
  EXPECT_EQ(Rows("SELECT k, seq FROM t ORDER BY k LIMIT 0").size(), 0u);
  EXPECT_EQ(Rows("SELECT k, seq FROM t ORDER BY k LIMIT 5 OFFSET 100").size(),
            0u);
  EXPECT_EQ(Rows("SELECT k, seq FROM t ORDER BY k LIMIT 100 OFFSET 6").size(),
            2u);
  EXPECT_EQ(SeqOrder("SELECT k, seq FROM t ORDER BY k LIMIT 3 OFFSET 2"),
            "0,2,7,");
  // OFFSET without ORDER BY takes the plain Limit path.
  EXPECT_EQ(SeqOrder("SELECT k, seq FROM t LIMIT 2 OFFSET 1"), "1,2,");
  EXPECT_EQ(Rows("SELECT k, seq FROM t LIMIT 2 OFFSET 100").size(), 0u);
}

TEST_F(SortTest, TopNMatchesFullSortByteForByte) {
  const char* queries[] = {
      "SELECT k, seq, s FROM t ORDER BY k LIMIT 3",
      "SELECT k, seq, s FROM t ORDER BY k DESC LIMIT 4",
      "SELECT k, seq, s FROM t ORDER BY k, s DESC LIMIT 3 OFFSET 2",
      "SELECT k, seq, s FROM t ORDER BY s LIMIT 100",   // limit past end
      "SELECT k, seq, s FROM t ORDER BY k LIMIT 0",
  };
  for (const char* sql : queries) {
    PlannerOptions opts = db_.planner_options();
    opts.topn_pushdown = false;
    db_.set_planner_options(opts);
    ASSERT_OK_AND_ASSIGN(ResultSet full, db_.Execute(sql));
    opts.topn_pushdown = true;
    db_.set_planner_options(opts);
    StatsScope scope(db_.stats());
    ASSERT_OK_AND_ASSIGN(ResultSet topn, db_.Execute(sql));
    EXPECT_EQ(Canon(full), Canon(topn)) << sql;
    EXPECT_EQ(scope.Delta().topn_pushdowns, 1u) << sql;
  }
}

TEST_F(SortTest, TopNPrunesRowsBeyondTheBound) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(db_.Execute("INSERT INTO t VALUES (" + std::to_string(i % 37) +
                          ", " + std::to_string(100 + i) + ", 'x')")
                  .status());
  }
  StatsScope scope(db_.stats());
  ASSERT_OK(db_.Execute("SELECT k, seq FROM t ORDER BY k, seq LIMIT 5")
                .status());
  ExecStats d = scope.Delta();
  EXPECT_EQ(d.topn_pushdowns, 1u);
  // 508 input rows, at most 5 candidates survive the bounded heap.
  EXPECT_GE(d.topn_rows_pruned, 500u);
}

TEST_F(SortTest, ParallelSortByteIdenticalToSerial) {
  // Many duplicate keys and NULLs so stability and NULL placement are
  // actually exercised across run boundaries.
  for (int i = 0; i < 600; ++i) {
    std::string k = i % 11 == 0 ? "NULL" : std::to_string(i % 7);
    ASSERT_OK(db_.Execute("INSERT INTO t VALUES (" + k + ", " +
                          std::to_string(100 + i) + ", 's" +
                          std::to_string(i % 5) + "')")
                  .status());
  }
  const char* queries[] = {
      "SELECT k, seq, s FROM t ORDER BY k",
      "SELECT k, seq, s FROM t ORDER BY k DESC, s",
      "SELECT k, seq, s FROM t ORDER BY s DESC, k LIMIT 17",
      "SELECT k, seq, s FROM t ORDER BY k LIMIT 10 OFFSET 595",
  };
  for (const char* sql : queries) {
    SetParallelism(1, 4096);
    ASSERT_OK_AND_ASSIGN(ResultSet serial, db_.Execute(sql));
    SetParallelism(4, 16);
    StatsScope scope(db_.stats());
    ASSERT_OK_AND_ASSIGN(ResultSet par, db_.Execute(sql));
    EXPECT_EQ(Canon(serial), Canon(par)) << sql;
    EXPECT_EQ(scope.Delta().parallel_sorts, 1u) << sql;
    SetParallelism(1, 4096);
  }
}

TEST_F(SortTest, SerialSortBelowGateCountsNoParallelSort) {
  StatsScope scope(db_.stats());
  ASSERT_OK(db_.Execute("SELECT k, seq FROM t ORDER BY k").status());
  EXPECT_EQ(scope.Delta().parallel_sorts, 0u);
}

// Toggling topn_pushdown moves the options version, so prepared statements
// transparently recompile — the MT layer's fingerprints (which embed the
// engine compilation version) invalidate the same way.
TEST_F(SortTest, TopNToggleRecompilesPreparedStatements) {
  ASSERT_OK_AND_ASSIGN(PreparedPlan prepared,
                       db_.Prepare("SELECT k, seq FROM t ORDER BY k LIMIT 3"));
  ASSERT_OK_AND_ASSIGN(ResultSet first, prepared.Execute());
  StatsScope scope(db_.stats());
  ASSERT_OK_AND_ASSIGN(ResultSet again, prepared.Execute());
  EXPECT_EQ(scope.Delta().statements_planned, 0u);
  EXPECT_EQ(scope.Delta().plan_cache_hits, 1u);
  PlannerOptions opts = db_.planner_options();
  opts.topn_pushdown = false;
  db_.set_planner_options(opts);
  scope.Restart();
  ASSERT_OK_AND_ASSIGN(ResultSet replanned, prepared.Execute());
  EXPECT_GE(scope.Delta().statements_planned, 1u);
  EXPECT_EQ(Canon(first), Canon(again));
  EXPECT_EQ(Canon(first), Canon(replanned));
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
