// Admission control: the FIFO ticket gate bounding concurrent statements.
//
// Controller-level tests pin the scheduling contract deterministically
// (bounded in-flight, ticket-order admission, cancellation of queued
// waiters); database-level tests prove the gate is actually wired around
// statement execution (high-water mark under a cap, queue-wait histogram,
// counter reconciliation, and a queued statement aborting cleanly when its
// cancel token flips — the session-teardown path).
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/admission.h"
#include "engine/database.h"
#include "engine/obs/metrics.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

TEST(AdmissionControllerTest, UnlimitedNeverBlocksButCounts) {
  AdmissionController ac;
  ASSERT_EQ(ac.limit(), 0);
  ASSERT_OK(ac.Acquire(nullptr));
  ASSERT_OK(ac.Acquire(nullptr));
  EXPECT_EQ(ac.in_flight(), 2);
  EXPECT_GE(ac.max_in_flight_seen(), 2);
  ac.Release();
  ac.Release();
  EXPECT_EQ(ac.in_flight(), 0);
}

TEST(AdmissionControllerTest, CapBoundsInFlight) {
  AdmissionController ac;
  ac.set_limit(2);
  constexpr int kThreads = 8;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        if (!ac.Acquire(nullptr).ok()) {
          ++errors;
          continue;
        }
        std::this_thread::yield();
        ac.Release();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(ac.in_flight(), 0);
  EXPECT_LE(ac.max_in_flight_seen(), 2);
  EXPECT_GE(ac.max_in_flight_seen(), 1);
}

// FIFO: with the cap held, waiters that queued in a known order are admitted
// in that order. Each waiter delays its Acquire until the queue has exactly
// its predecessors, which fixes the ticket order deterministically.
TEST(AdmissionControllerTest, QueuedWaitersAdmittedInArrivalOrder) {
  AdmissionController ac;
  ac.set_limit(1);
  ASSERT_OK(ac.Acquire(nullptr));  // hold the only slot
  constexpr int kWaiters = 6;
  std::mutex mu;
  std::vector<int> admitted_order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      // Enter the queue only once every lower-numbered waiter is queued.
      while (ac.queue_depth() < i) std::this_thread::yield();
      ASSERT_OK(ac.Acquire(nullptr));
      {
        std::lock_guard<std::mutex> lock(mu);
        admitted_order.push_back(i);
      }
      ac.Release();
    });
  }
  while (ac.queue_depth() < kWaiters) std::this_thread::yield();
  ac.Release();  // open the gate; waiters drain one at a time
  for (std::thread& th : waiters) th.join();
  std::vector<int> expect;
  for (int i = 0; i < kWaiters; ++i) expect.push_back(i);
  EXPECT_EQ(admitted_order, expect);
  EXPECT_EQ(ac.in_flight(), 0);
  EXPECT_EQ(ac.queue_depth(), 0);
}

TEST(AdmissionControllerTest, CancelledWaiterAbortsAndQueueDrains) {
  obs::MetricsRegistry* metrics = obs::MetricsRegistry::Global();
  const uint64_t cancelled_before =
      metrics->CounterValue("mtbase_engine_statements_cancelled_total");
  AdmissionController ac;
  ac.set_limit(1);
  ASSERT_OK(ac.Acquire(nullptr));
  std::atomic<bool> cancel{false};
  Status waiter_status = Status::OK();
  std::thread cancelled_waiter([&] { waiter_status = ac.Acquire(&cancel); });
  while (ac.queue_depth() < 1) std::this_thread::yield();
  // A second, uncancelled waiter queues behind the doomed one; it must still
  // be admitted (the abandoned ticket may not stall the queue).
  Status second_status = Status::OK();
  std::thread second_waiter([&] {
    while (ac.queue_depth() < 1) std::this_thread::yield();
    second_status = ac.Acquire(nullptr);
    if (second_status.ok()) ac.Release();
  });
  while (ac.queue_depth() < 2) std::this_thread::yield();
  cancel.store(true, std::memory_order_release);
  ac.NotifyAll();
  cancelled_waiter.join();
  EXPECT_FALSE(waiter_status.ok());
  ac.Release();  // now the second waiter gets the slot
  second_waiter.join();
  EXPECT_OK(second_status);
  EXPECT_EQ(ac.in_flight(), 0);
  EXPECT_EQ(ac.queue_depth(), 0);
  EXPECT_GT(metrics->CounterValue("mtbase_engine_statements_cancelled_total"),
            cancelled_before);
}

class AdmissionDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE t (a INTEGER, b INTEGER)"));
    std::string script;
    for (int i = 0; i < 600; ++i) {
      script += "INSERT INTO t VALUES (" + std::to_string(i % 37) + ", " +
                std::to_string(i) + ");\n";
    }
    ASSERT_OK(db_.ExecuteScript(script));
  }

  Database db_;
};

// With the cap at 2, eight threads of real statements never exceed two in
// flight, every statement still succeeds, and the admission counters and
// queue-wait histogram reconcile with what was issued.
TEST_F(AdmissionDatabaseTest, StatementsRespectCapAndMetricsReconcile) {
  obs::MetricsRegistry* metrics = obs::MetricsRegistry::Global();
  const uint64_t admitted_before =
      metrics->CounterValue("mtbase_engine_statements_admitted_total");
  const uint64_t waits_before =
      metrics->HistogramCount("mtbase_engine_admission_wait_seconds");
  db_.set_max_concurrent_statements(2);
  // SetUp's own statements already passed through the gate serially, so the
  // high-water mark starts at 1; the concurrent run below may only raise it
  // to the cap.
  ASSERT_LE(db_.admission()->max_in_flight_seen(), 1);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto rs = db_.Execute(
            "SELECT a, COUNT(*), SUM(b) FROM t GROUP BY a ORDER BY a");
        if (!rs.ok()) ++errors;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_LE(db_.admission()->max_in_flight_seen(), 2);
  EXPECT_GE(db_.admission()->max_in_flight_seen(), 1);
  EXPECT_EQ(db_.admission()->in_flight(), 0);
  EXPECT_EQ(db_.admission()->queue_depth(), 0);
  const uint64_t issued = static_cast<uint64_t>(kThreads * kPerThread);
  EXPECT_EQ(metrics->CounterValue("mtbase_engine_statements_admitted_total") -
                admitted_before,
            issued);
  // Every admission records one queue-wait observation (zero for immediate
  // admission), so the histogram moves in lockstep.
  EXPECT_EQ(
      metrics->HistogramCount("mtbase_engine_admission_wait_seconds") -
          waits_before,
      issued);
}

// A statement queued at the gate whose cancel token flips (the session-
// teardown path) aborts with a clean error; the slot holder is unaffected
// and the gate is reusable afterwards.
TEST_F(AdmissionDatabaseTest, QueuedStatementAbortsOnCancelToken) {
  db_.set_max_concurrent_statements(1);
  ASSERT_OK(db_.admission()->Acquire(nullptr));  // occupy the only slot
  std::atomic<bool> closed{false};
  Status queued_status = Status::OK();
  std::thread queued([&] {
    ScopedCancelToken token(&closed);
    queued_status = db_.Execute("SELECT COUNT(*) FROM t").status();
  });
  while (db_.admission()->queue_depth() < 1) std::this_thread::yield();
  closed.store(true, std::memory_order_release);
  db_.admission()->NotifyAll();
  queued.join();
  EXPECT_FALSE(queued_status.ok());
  EXPECT_NE(queued_status.ToString().find("cancel"), std::string::npos)
      << queued_status.ToString();
  db_.admission()->Release();
  // The gate still works: the next statement is admitted and runs.
  ASSERT_OK_AND_ASSIGN(auto rs, db_.Execute("SELECT COUNT(*) FROM t"));
  EXPECT_EQ(CanonRows(rs.rows), CanonRows({{Value::Int(600)}}));
}

// Raising the limit at runtime wakes queued statements (the serving layer's
// dynamic reconfiguration path).
TEST_F(AdmissionDatabaseTest, RaisingLimitReleasesQueue) {
  db_.set_max_concurrent_statements(1);
  ASSERT_OK(db_.admission()->Acquire(nullptr));
  Status queued_status = Status::Internal("never ran");
  std::thread queued([&] {
    queued_status = db_.Execute("SELECT COUNT(*) FROM t").status();
  });
  while (db_.admission()->queue_depth() < 1) std::this_thread::yield();
  db_.set_max_concurrent_statements(2);
  queued.join();
  EXPECT_OK(queued_status);
  db_.admission()->Release();
  EXPECT_EQ(db_.admission()->in_flight(), 0);
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
