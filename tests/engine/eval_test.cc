// Expression evaluation corner cases, exercised through SQL.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  Value Scalar(const std::string& expr) {
    auto r = db_.Execute("SELECT " + expr);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << expr;
    if (!r.ok() || r.value().rows.empty()) return Value::Null();
    return r.value().rows[0][0];
  }

  Database db_;
};

TEST_F(EvalTest, IntegerArithmeticStaysIntegral) {
  EXPECT_EQ(Scalar("2 + 3 * 4").type(), TypeId::kInt);
  EXPECT_EQ(Scalar("2 + 3 * 4").int_value(), 14);
  EXPECT_EQ(Scalar("10 - 20").int_value(), -10);
}

TEST_F(EvalTest, DivisionIsExactDecimal) {
  // Integer division produces a decimal (PostgreSQL numeric semantics).
  EXPECT_EQ(Scalar("7 / 2").type(), TypeId::kDecimal);
  EXPECT_DOUBLE_EQ(Scalar("7 / 2").AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(Scalar("1 / 3").AsDouble(), 0.333333);
}

TEST_F(EvalTest, DivisionByZeroIsError) {
  EXPECT_FALSE(db_.Execute("SELECT 1 / 0").ok());
  EXPECT_FALSE(db_.Execute("SELECT 1.5 / 0.0").ok());
}

TEST_F(EvalTest, DecimalPropagation) {
  EXPECT_EQ(Scalar("0.1 + 0.2").decimal_value().ToString(), "0.3");
  EXPECT_EQ(Scalar("1.5 * 1.5").decimal_value().ToString(), "2.25");
  EXPECT_EQ(Scalar("-1.5").decimal_value().ToString(), "-1.5");
}

TEST_F(EvalTest, UnaryMinusAndNot) {
  EXPECT_EQ(Scalar("-(-5)").int_value(), 5);
  EXPECT_EQ(Scalar("NOT TRUE").bool_value(), false);
  EXPECT_EQ(Scalar("NOT (1 = 2)").bool_value(), true);
  EXPECT_TRUE(Scalar("NOT NULL").is_null());
}

TEST_F(EvalTest, ComparisonChains) {
  EXPECT_TRUE(Scalar("1 < 2").bool_value());
  EXPECT_TRUE(Scalar("'abc' <> 'abd'").bool_value());
  EXPECT_TRUE(Scalar("DATE '1994-01-01' < DATE '1995-01-01'").bool_value());
  EXPECT_TRUE(Scalar("1.5 = 1.50").bool_value());
  EXPECT_TRUE(Scalar("1 = 1.0").bool_value());  // cross numeric types
}

TEST_F(EvalTest, KleeneLogicTruthTable) {
  EXPECT_TRUE(Scalar("NULL OR TRUE").bool_value());
  EXPECT_TRUE(Scalar("NULL OR 1 = 1").bool_value());
  EXPECT_FALSE(Scalar("NULL AND FALSE").bool_value());
  EXPECT_TRUE(Scalar("NULL AND TRUE").is_null());
  EXPECT_TRUE(Scalar("NULL OR FALSE").is_null());
  EXPECT_TRUE(Scalar("NULL AND NULL").is_null());
}

TEST_F(EvalTest, BetweenBoundsInclusive) {
  EXPECT_TRUE(Scalar("5 BETWEEN 5 AND 7").bool_value());
  EXPECT_TRUE(Scalar("7 BETWEEN 5 AND 7").bool_value());
  EXPECT_FALSE(Scalar("4 BETWEEN 5 AND 7").bool_value());
  EXPECT_TRUE(Scalar("4 NOT BETWEEN 5 AND 7").bool_value());
  EXPECT_TRUE(Scalar("NULL BETWEEN 1 AND 2").is_null());
}

TEST_F(EvalTest, InListNullSemantics) {
  EXPECT_TRUE(Scalar("1 IN (1, 2)").bool_value());
  EXPECT_FALSE(Scalar("3 IN (1, 2)").bool_value());
  EXPECT_TRUE(Scalar("3 IN (1, NULL)").is_null());   // unknown
  EXPECT_TRUE(Scalar("1 IN (1, NULL)").bool_value()); // found wins
  EXPECT_TRUE(Scalar("3 NOT IN (1, NULL)").is_null());
}

TEST_F(EvalTest, DateArithmetic) {
  EXPECT_EQ(Scalar("DATE '1998-12-01' - INTERVAL '90' DAY").ToString(),
            "1998-09-02");
  EXPECT_EQ(Scalar("DATE '1993-07-01' + INTERVAL '3' MONTH").ToString(),
            "1993-10-01");
  EXPECT_EQ(Scalar("DATE '1994-01-01' + INTERVAL '1' YEAR").ToString(),
            "1995-01-01");
  EXPECT_EQ(Scalar("DATE '1994-01-05' - DATE '1994-01-01'").int_value(), 4);
  EXPECT_EQ(Scalar("DATE '1994-01-01' + 10").ToString(), "1994-01-11");
}

TEST_F(EvalTest, ExtractFields) {
  EXPECT_EQ(Scalar("EXTRACT(YEAR FROM DATE '1995-03-15')").int_value(), 1995);
  EXPECT_EQ(Scalar("EXTRACT(MONTH FROM DATE '1995-03-15')").int_value(), 3);
  EXPECT_EQ(Scalar("EXTRACT(DAY FROM DATE '1995-03-15')").int_value(), 15);
}

TEST_F(EvalTest, SubstringEdgeCases) {
  EXPECT_EQ(Scalar("SUBSTRING('hello' FROM 1 FOR 2)").string_value(), "he");
  EXPECT_EQ(Scalar("SUBSTRING('hello' FROM 10 FOR 2)").string_value(), "");
  EXPECT_EQ(Scalar("SUBSTRING('hello' FROM 1 FOR 0)").string_value(), "");
  EXPECT_EQ(Scalar("SUBSTRING('hello' FROM 4)").string_value(), "lo");
  EXPECT_TRUE(Scalar("SUBSTRING(NULL FROM 1 FOR 2)").is_null());
}

TEST_F(EvalTest, CaseEvaluationOrder) {
  // First matching WHEN wins; missing ELSE yields NULL.
  EXPECT_EQ(Scalar("CASE WHEN TRUE THEN 1 WHEN TRUE THEN 2 END").int_value(),
            1);
  EXPECT_TRUE(Scalar("CASE WHEN FALSE THEN 1 END").is_null());
  EXPECT_EQ(Scalar("CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END").string_value(),
            "b");
}

TEST_F(EvalTest, SortOrderWithNulls) {
  ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE s (v INTEGER); INSERT INTO s VALUES (2), (NULL), (1)"));
  ASSERT_OK_AND_ASSIGN(auto rs, db_.Execute("SELECT v FROM s ORDER BY v"));
  // NULLs sort last ascending.
  EXPECT_EQ(rs.rows[0][0].int_value(), 1);
  EXPECT_TRUE(rs.rows[2][0].is_null());
  ASSERT_OK_AND_ASSIGN(rs, db_.Execute("SELECT v FROM s ORDER BY v DESC"));
  EXPECT_TRUE(rs.rows[0][0].is_null());  // inverted: NULLs first descending
  EXPECT_EQ(rs.rows[1][0].int_value(), 2);
}

TEST_F(EvalTest, StringConcatOperatorAndNumericRendering) {
  EXPECT_EQ(Scalar("'n=' || 42").string_value(), "n=42");
  EXPECT_TRUE(Scalar("'x' || NULL").is_null());
}

TEST_F(EvalTest, TypeErrorsSurfaceAsStatuses) {
  EXPECT_FALSE(db_.Execute("SELECT 'a' + 1").ok());
  EXPECT_FALSE(db_.Execute("SELECT -'a'").ok());
  EXPECT_FALSE(db_.Execute("SELECT 'a' < 1").ok());
  EXPECT_FALSE(db_.Execute("SELECT EXTRACT(YEAR FROM 5)").ok());
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
