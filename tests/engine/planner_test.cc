// Planner-level behavior: pushdown, InitPlans, unnesting — observed through
// ExecStats rather than timing.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE big (id INTEGER NOT NULL, grp INTEGER NOT NULL, v "
        "INTEGER NOT NULL)"));
    Table* t = db_.catalog()->FindTable("big");
    for (int64_t i = 0; i < 1000; ++i) {
      ASSERT_OK(t->Insert(
          {Value::Int(i), Value::Int(i % 10), Value::Int(i * 7 % 101)}));
    }
  }
  Database db_;
};

TEST_F(PlannerTest, JoinDoesNotExplode) {
  StatsScope stats(db_.stats());
  ASSERT_OK_AND_ASSIGN(
      auto rs, db_.Execute("SELECT COUNT(*) FROM big a, big b WHERE a.id = "
                           "b.id AND a.grp = 3"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 100);
  // A hash join touches each pair once; a nested loop would visit 10^6.
  EXPECT_LT(stats.Delta().rows_joined, 2000u);
}

TEST_F(PlannerTest, FilterPushdownLimitsJoinInput) {
  StatsScope stats(db_.stats());
  ASSERT_OK(db_.Execute("SELECT COUNT(*) FROM big a, big b WHERE a.id = b.id "
                        "AND a.grp = 3 AND b.grp = 3")
                .status());
  EXPECT_LT(stats.Delta().rows_joined, 200u);
}

TEST_F(PlannerTest, ExistsBecomesSemiJoinNotPerRow) {
  StatsScope stats(db_.stats());
  ASSERT_OK_AND_ASSIGN(
      auto rs,
      db_.Execute("SELECT COUNT(*) FROM big a WHERE EXISTS (SELECT * FROM "
                  "big b WHERE b.id = a.id AND b.v > 50)"));
  EXPECT_GT(rs.rows[0][0].int_value(), 0);
  EXPECT_EQ(stats.Delta().subquery_execs, 0u);  // decorrelated
}

TEST_F(PlannerTest, CorrelatedScalarAggBecomesGroupJoin) {
  StatsScope stats(db_.stats());
  ASSERT_OK(db_.Execute("SELECT COUNT(*) FROM big a WHERE a.v > (SELECT "
                        "AVG(b.v) FROM big b WHERE b.grp = a.grp)")
                .status());
  EXPECT_EQ(stats.Delta().subquery_execs, 0u);
}

TEST_F(PlannerTest, UncorrelatedInSubqueryEvaluatedOnce) {
  StatsScope stats(db_.stats());
  ASSERT_OK(db_.Execute("SELECT COUNT(*) FROM big WHERE grp IN (SELECT grp "
                        "FROM big WHERE v = 7)")
                .status());
  EXPECT_EQ(stats.Delta().initplan_execs, 1u);
  EXPECT_EQ(stats.Delta().subquery_execs, 0u);
}

TEST_F(PlannerTest, ViewExpandsInline) {
  ASSERT_OK(db_.Execute(
      "CREATE VIEW grp3 AS SELECT id, v FROM big WHERE grp = 3"));
  ASSERT_OK_AND_ASSIGN(auto rs,
                       db_.Execute("SELECT COUNT(*) FROM grp3 WHERE v > 50"));
  EXPECT_GT(rs.rows[0][0].int_value(), 0);
  EXPECT_LT(rs.rows[0][0].int_value(), 100);
}

TEST_F(PlannerTest, AmbiguousColumnRejected) {
  auto st = db_.Execute("SELECT id FROM big a, big b WHERE a.grp = b.grp");
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PlannerTest, AggregateWithoutGroupByOverColumnRejected) {
  auto st = db_.Execute("SELECT v, COUNT(*) FROM big");
  EXPECT_FALSE(st.ok());
}

TEST_F(PlannerTest, AggregateInWhereRejected) {
  auto st = db_.Execute("SELECT id FROM big WHERE COUNT(*) > 1");
  EXPECT_FALSE(st.ok());
}

TEST_F(PlannerTest, GroupByExpressionMatchedInSelect) {
  ASSERT_OK_AND_ASSIGN(
      auto rs, db_.Execute("SELECT grp + 1, COUNT(*) FROM big GROUP BY grp + "
                           "1 ORDER BY grp + 1 LIMIT 3"));
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].int_value(), 1);
  EXPECT_EQ(rs.rows[0][1].int_value(), 100);
}

TEST_F(PlannerTest, CountDistinct) {
  ASSERT_OK_AND_ASSIGN(auto rs,
                       db_.Execute("SELECT COUNT(DISTINCT grp) FROM big"));
  EXPECT_EQ(rs.rows[0][0].int_value(), 10);
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
