#include "engine/explain.h"

#include <gtest/gtest.h>

#include "engine/database.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      CREATE TABLE a (x INTEGER NOT NULL, y INTEGER NOT NULL);
      CREATE TABLE b (x INTEGER NOT NULL, z INTEGER NOT NULL);
    )"));
  }

  std::string Explain(const std::string& query) {
    auto sel = sql::ParseSelect(query);
    EXPECT_TRUE(sel.ok());
    auto r = ExplainSelect(db_.catalog(), db_.udfs(), *sel.value());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value() : "";
  }

  Database db_;
};

TEST_F(ExplainTest, ScanWithFilter) {
  std::string plan = Explain("SELECT x FROM a WHERE y > 1");
  EXPECT_PLAN_SHAPE(plan, {"*Project*", "*Scan a (filtered)*"});
}

TEST_F(ExplainTest, HashJoinShowsKeys) {
  std::string plan =
      Explain("SELECT a.y FROM a, b WHERE a.x = b.x AND a.y < b.z");
  EXPECT_NE(plan.find("HashJoin INNER (1 keys, residual)"), std::string::npos)
      << plan;
}

TEST_F(ExplainTest, SemiJoinFromExists) {
  std::string plan = Explain(
      "SELECT y FROM a WHERE EXISTS (SELECT * FROM b WHERE b.x = a.x)");
  EXPECT_NE(plan.find("HashJoin SEMI"), std::string::npos) << plan;
}

TEST_F(ExplainTest, AggregateAndSort) {
  std::string plan = Explain(
      "SELECT y, COUNT(*) AS c, SUM(x) FROM a GROUP BY y ORDER BY c DESC");
  // Shape-asserted top-down: the sort consumes the aggregate, which scans a.
  EXPECT_PLAN_SHAPE(plan, {"*Sort (keys: 1 DESC)*",
                           "*Aggregate (groups: 1, aggs: COUNT(*) SUM)*",
                           "*Scan a*"});
}

TEST_F(ExplainTest, SortLimitFusesIntoTopN) {
  std::string plan = Explain(
      "SELECT y, COUNT(*) AS c, SUM(x) FROM a GROUP BY y ORDER BY c DESC "
      "LIMIT 3");
  EXPECT_NE(plan.find("TopN (keys: 1 DESC) [top-n: 3]"), std::string::npos)
      << plan;
  EXPECT_EQ(plan.find("Limit"), std::string::npos) << plan;
  // OFFSET rides along in the fused operator.
  plan = Explain("SELECT y FROM a ORDER BY y LIMIT 3 OFFSET 2");
  EXPECT_NE(plan.find("TopN (keys: 0) [top-n: 3, offset 2]"),
            std::string::npos)
      << plan;
}

TEST_F(ExplainTest, TopNPushdownOffKeepsSortPlusLimit) {
  auto sel = sql::ParseSelect("SELECT y FROM a ORDER BY y LIMIT 3 OFFSET 2");
  ASSERT_TRUE(sel.ok());
  PlannerOptions opts;
  opts.topn_pushdown = false;
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      ExplainSelect(db_.catalog(), db_.udfs(), *sel.value(), opts));
  EXPECT_NE(plan.find("Limit 3 OFFSET 2"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Sort (keys: 0)"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("TopN"), std::string::npos) << plan;
}

TEST_F(ExplainTest, LimitWithoutOrderByStaysLimit) {
  std::string plan = Explain("SELECT y FROM a LIMIT 5");
  EXPECT_NE(plan.find("Limit 5"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("TopN"), std::string::npos) << plan;
}

TEST_F(ExplainTest, ParallelSortAnnotationGatedOnThreadsAndSize) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(db_.Execute("INSERT INTO a VALUES (" + std::to_string(i) + ", " +
                          std::to_string(i * 2) + ")")
                  .status());
  }
  auto sel = sql::ParseSelect("SELECT y FROM a ORDER BY y DESC");
  ASSERT_TRUE(sel.ok());
  PlannerOptions opts;
  opts.max_threads = 4;
  opts.min_parallel_rows = 64;
  ASSERT_OK_AND_ASSIGN(
      std::string plan,
      ExplainSelect(db_.catalog(), db_.udfs(), *sel.value(), opts));
  EXPECT_NE(plan.find("Sort (keys: 0 DESC) [parallel sort: 4 threads]"),
            std::string::npos)
      << plan;
  // The fused top-N carries the same annotation when eligible.
  auto topn = sql::ParseSelect("SELECT y FROM a ORDER BY y DESC LIMIT 5");
  ASSERT_TRUE(topn.ok());
  ASSERT_OK_AND_ASSIGN(plan, ExplainSelect(db_.catalog(), db_.udfs(),
                                           *topn.value(), opts));
  EXPECT_NE(
      plan.find("TopN (keys: 0 DESC) [top-n: 5] [parallel sort: 4 threads]"),
      std::string::npos)
      << plan;
  // Serial budget / tiny input: no sort annotation.
  opts.max_threads = 1;
  ASSERT_OK_AND_ASSIGN(plan, ExplainSelect(db_.catalog(), db_.udfs(),
                                           *sel.value(), opts));
  EXPECT_EQ(plan.find("[parallel sort:"), std::string::npos) << plan;
  opts.max_threads = 4;
  opts.min_parallel_rows = 4096;
  ASSERT_OK_AND_ASSIGN(plan, ExplainSelect(db_.catalog(), db_.udfs(),
                                           *sel.value(), opts));
  EXPECT_EQ(plan.find("[parallel sort:"), std::string::npos) << plan;
}

TEST_F(ExplainTest, UdfMarker) {
  ASSERT_OK(db_.Execute(
      "CREATE FUNCTION twice (INTEGER) RETURNS INTEGER AS 'SELECT $1 + $1' "
      "LANGUAGE SQL IMMUTABLE").status());
  std::string plan = Explain("SELECT twice(x) FROM a WHERE twice(y) > 2");
  EXPECT_NE(plan.find("Scan a (filtered) [udf: immutable, cached]"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("Project (1 columns) [udf: immutable, cached]"),
            std::string::npos)
      << plan;
}

TEST_F(ExplainTest, UdfAnnotationShowsVolatility) {
  ASSERT_OK(db_.Execute(
      "CREATE FUNCTION twice (INTEGER) RETURNS INTEGER AS 'SELECT $1 + $1' "
      "LANGUAGE SQL IMMUTABLE").status());
  ASSERT_OK(db_.Execute(
      "CREATE FUNCTION rnd (INTEGER) RETURNS INTEGER AS 'SELECT $1' "
      "LANGUAGE SQL").status());
  std::string plan = Explain("SELECT twice(x) FROM a");
  EXPECT_NE(plan.find("Project (1 columns) [udf: immutable, cached]"),
            std::string::npos)
      << plan;
  plan = Explain("SELECT rnd(x) FROM a");
  EXPECT_NE(plan.find("Project (1 columns) [udf: volatile]"),
            std::string::npos)
      << plan;
  // A mix renders the weakest class: one volatile call keeps the operator
  // serial.
  plan = Explain("SELECT twice(rnd(x)) FROM a");
  EXPECT_NE(plan.find("[udf: volatile]"), std::string::npos) << plan;
  // STABLE is its own class: statement-cached, not volatile.
  ASSERT_OK(db_.Execute(
      "CREATE FUNCTION stbl (INTEGER) RETURNS INTEGER AS 'SELECT $1' "
      "LANGUAGE SQL STABLE").status());
  plan = Explain("SELECT stbl(x) FROM a");
  EXPECT_NE(plan.find("Project (1 columns) [udf: stable, statement-cached]"),
            std::string::npos)
      << plan;
  plan = Explain("SELECT twice(stbl(x)) FROM a");
  EXPECT_NE(plan.find("[udf: stable, statement-cached]"), std::string::npos)
      << plan;
}

TEST_F(ExplainTest, ImmutableUdfOperatorsAnnotateParallel) {
  ASSERT_OK(db_.Execute(
      "CREATE FUNCTION twice (INTEGER) RETURNS INTEGER AS 'SELECT $1 + $1' "
      "LANGUAGE SQL IMMUTABLE").status());
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(db_.Execute("INSERT INTO a VALUES (" + std::to_string(i) + ", " +
                          std::to_string(i * 2) + ")")
                  .status());
  }
  auto sel = sql::ParseSelect("SELECT twice(x) FROM a");
  ASSERT_TRUE(sel.ok());
  PlannerOptions opts;
  opts.max_threads = 4;
  opts.min_parallel_rows = 64;
  ASSERT_OK_AND_ASSIGN(std::string plan,
                       ExplainSelect(db_.catalog(), db_.udfs(), *sel.value(),
                                     opts));
  // The conversion-shaped projection is parallel-safe now that its only UDF
  // is immutable: both annotations render, in grammar order.
  EXPECT_NE(plan.find("[udf: immutable, cached] [parallel: 4 threads]"),
            std::string::npos)
      << plan;
}

TEST_F(ExplainTest, NestedLoopMarkedExplicitly) {
  std::string plan = Explain("SELECT a.y FROM a, b WHERE a.y < b.z");
  EXPECT_NE(plan.find("[nested-loop]"), std::string::npos) << plan;
}

TEST_F(ExplainTest, ParallelAnnotationGatedOnThreadsAndSize) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(db_.Execute("INSERT INTO a VALUES (" + std::to_string(i) + ", " +
                          std::to_string(i * 2) + ")")
                  .status());
  }
  auto sel = sql::ParseSelect("SELECT x FROM a WHERE y > 1");
  ASSERT_TRUE(sel.ok());
  PlannerOptions opts;
  opts.max_threads = 4;
  opts.min_parallel_rows = 64;
  ASSERT_OK_AND_ASSIGN(std::string plan,
                       ExplainSelect(db_.catalog(), db_.udfs(), *sel.value(),
                                     opts));
  EXPECT_NE(plan.find("Scan a (filtered) [parallel: 4 threads]"),
            std::string::npos)
      << plan;
  // Serial budget: no annotation anywhere.
  opts.max_threads = 1;
  ASSERT_OK_AND_ASSIGN(plan, ExplainSelect(db_.catalog(), db_.udfs(),
                                           *sel.value(), opts));
  EXPECT_EQ(plan.find("[parallel:"), std::string::npos) << plan;
  // Tiny input (below the gate): no annotation either.
  opts.max_threads = 4;
  opts.min_parallel_rows = 4096;
  ASSERT_OK_AND_ASSIGN(plan, ExplainSelect(db_.catalog(), db_.udfs(),
                                           *sel.value(), opts));
  EXPECT_EQ(plan.find("[parallel:"), std::string::npos) << plan;
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
