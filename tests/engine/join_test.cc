#include <gtest/gtest.h>

#include "engine/database.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      CREATE TABLE emp (id INTEGER NOT NULL, dept INTEGER, name VARCHAR(20), sal INTEGER NOT NULL);
      CREATE TABLE dept (id INTEGER NOT NULL, dname VARCHAR(20) NOT NULL);
      INSERT INTO emp VALUES (1, 10, 'ann', 100), (2, 10, 'bob', 200),
                             (3, 20, 'cat', 300), (4, NULL, 'dan', 250);
      INSERT INTO dept VALUES (10, 'eng'), (20, 'ops'), (30, 'hr');
    )"));
  }

  std::vector<Row> Rows(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
    return r.ok() ? r.value().rows : std::vector<Row>{};
  }

  Database db_;
};

TEST_F(JoinTest, InnerHashJoin) {
  auto rows = Rows(
      "SELECT name, dname FROM emp, dept WHERE dept = dept.id ORDER BY name");
  ASSERT_EQ(rows.size(), 3u);  // dan has NULL dept
  EXPECT_EQ(rows[0][1].string_value(), "eng");
}

TEST_F(JoinTest, JoinOnSyntax) {
  auto rows =
      Rows("SELECT name FROM emp JOIN dept ON emp.dept = dept.id ORDER BY name");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(JoinTest, LeftJoinPadsNulls) {
  auto rows = Rows(
      "SELECT name, dname FROM emp LEFT JOIN dept ON emp.dept = dept.id "
      "ORDER BY name");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_TRUE(rows[3][1].is_null());  // dan
}

TEST_F(JoinTest, LeftJoinWithResidual) {
  // Residual restricts matches but keeps unmatched left rows (TPC-H Q13).
  auto rows = Rows(
      "SELECT name, dname FROM emp LEFT JOIN dept ON emp.dept = dept.id AND "
      "dname <> 'eng' ORDER BY name");
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_TRUE(rows[0][1].is_null());  // ann's match suppressed
  EXPECT_EQ(rows[2][1].string_value(), "ops");
}

TEST_F(JoinTest, CrossJoinWithResidualPredicate) {
  auto rows = Rows(
      "SELECT e1.name, e2.name FROM emp e1, emp e2 WHERE e1.sal < e2.sal AND "
      "e1.id <> e2.id");
  EXPECT_EQ(rows.size(), 6u);
}

TEST_F(JoinTest, SelfJoinAliases) {
  auto rows = Rows(
      "SELECT e1.name FROM emp e1, emp e2 WHERE e1.dept = e2.dept AND "
      "e1.id <> e2.id ORDER BY e1.name");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].string_value(), "ann");
}

TEST_F(JoinTest, ThreeWayJoin) {
  ASSERT_OK(db_.ExecuteScript(R"(
    CREATE TABLE loc (dept INTEGER NOT NULL, city VARCHAR(10) NOT NULL);
    INSERT INTO loc VALUES (10, 'zrh'), (20, 'sfo');
  )"));
  auto rows = Rows(
      "SELECT name, city FROM emp, dept, loc WHERE emp.dept = dept.id AND "
      "dept.id = loc.dept ORDER BY name");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(JoinTest, UncorrelatedInSubquery) {
  auto rows = Rows(
      "SELECT name FROM emp WHERE dept IN (SELECT id FROM dept WHERE dname = "
      "'eng') ORDER BY name");
  ASSERT_EQ(rows.size(), 2u);
}

TEST_F(JoinTest, NotInWithoutNulls) {
  auto rows = Rows(
      "SELECT dname FROM dept WHERE id NOT IN (SELECT dept FROM emp WHERE "
      "dept IS NOT NULL) ORDER BY dname");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].string_value(), "hr");
}

TEST_F(JoinTest, NotInWithNullsYieldsEmpty) {
  // dept list contains NULL -> NOT IN is never true (SQL three-valued logic).
  auto rows =
      Rows("SELECT dname FROM dept WHERE id NOT IN (SELECT dept FROM emp)");
  EXPECT_EQ(rows.size(), 0u);
}

TEST_F(JoinTest, ExistsSemiJoin) {
  auto rows = Rows(
      "SELECT dname FROM dept WHERE EXISTS (SELECT * FROM emp WHERE emp.dept "
      "= dept.id) ORDER BY dname");
  ASSERT_EQ(rows.size(), 2u);
}

TEST_F(JoinTest, NotExistsAntiJoin) {
  auto rows = Rows(
      "SELECT dname FROM dept WHERE NOT EXISTS (SELECT * FROM emp WHERE "
      "emp.dept = dept.id)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].string_value(), "hr");
}

TEST_F(JoinTest, ExistsWithNonEqualityResidual) {
  // The TPC-H Q21 shape: equality key plus <> residual.
  auto rows = Rows(
      "SELECT e1.name FROM emp e1 WHERE EXISTS (SELECT * FROM emp e2 WHERE "
      "e2.dept = e1.dept AND e2.id <> e1.id) ORDER BY e1.name");
  ASSERT_EQ(rows.size(), 2u);
}

TEST_F(JoinTest, CorrelatedScalarAggUnnested) {
  auto rows = Rows(
      "SELECT name FROM emp e1 WHERE sal > (SELECT AVG(e2.sal) FROM emp e2 "
      "WHERE e2.dept = e1.dept) ORDER BY name");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].string_value(), "bob");
}

TEST_F(JoinTest, CorrelatedScalarAggEmptyGroupDropsRow) {
  // No co-dept rows -> NULL comparison -> filtered (dan, NULL dept).
  auto rows = Rows(
      "SELECT name FROM emp e1 WHERE sal >= (SELECT MIN(e2.sal) FROM emp e2 "
      "WHERE e2.dept = e1.dept)");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(JoinTest, UncorrelatedScalarSubqueryIsInitPlan) {
  uint64_t before = db_.stats()->initplan_execs;
  auto rows =
      Rows("SELECT name FROM emp WHERE sal > (SELECT AVG(sal) FROM emp)");
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(db_.stats()->initplan_execs, before + 1);  // evaluated once
}

TEST_F(JoinTest, CorrelatedExistsFallbackStillCorrect) {
  // Non-equality-only correlation cannot be unnested; per-row fallback.
  auto rows = Rows(
      "SELECT name FROM emp e1 WHERE EXISTS (SELECT * FROM emp e2 WHERE "
      "e2.sal > e1.sal + 50)");
  // ann (100 -> 200/250/300), bob (200 -> 250/300); 250 and 300 have no
  // strictly-larger sal + 50.
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_GT(db_.stats()->subquery_execs, 0u);
}

TEST_F(JoinTest, ScalarSubqueryMultipleRowsIsError) {
  auto r = db_.Execute("SELECT (SELECT id FROM dept) FROM emp");
  EXPECT_FALSE(r.ok());
}

TEST_F(JoinTest, TupleInSubquery) {
  auto rows = Rows(
      "SELECT name FROM emp WHERE (dept, sal) IN (SELECT 10, 100 FROM dept) "
      "ORDER BY name");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].string_value(), "ann");
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
