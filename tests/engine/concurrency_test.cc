// Engine-layer concurrency: many threads driving one Database.
//
// What these tests pin down, mirroring the serving-layer contract:
//   - snapshot reads: a SELECT sees one atomically-published table version,
//     never a torn mix of pre- and post-DML rows. The probe is a balanced
//     workload (every write statement preserves SUM(bal)) under readers that
//     assert the invariant on every observation.
//   - serial equivalence: concurrent writers on disjoint key ranges leave
//     exactly the bytes a serial replay of the same statements leaves.
//   - DDL safety: CREATE TABLE / CREATE INDEX from one thread while others
//     scan, under the exclusive statement guard.
//   - accounting: the process metrics registry reconciles with the number of
//     statements the threads actually issued.
//
// The *Stress* test is time-boxed by MTBASE_STRESS_SECONDS (default 1; the
// CI TSan lane raises it) and registered separately under the `stress` ctest
// label. All tests are designed to run clean under ThreadSanitizer.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/database.h"
#include "engine/obs/metrics.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// Collects invariant violations from worker threads; gtest assertions are
/// only safe on the main thread, so workers record and main asserts.
class FailureLog {
 public:
  void Record(const std::string& msg) {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
    if (first_.empty()) first_ = msg;
  }
  int count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  std::string first() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_;
  }

 private:
  mutable std::mutex mu_;
  int count_ = 0;
  std::string first_;
};

class ConcurrencyTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 400;  // even: balanced updates split in half

  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE acct (id INTEGER NOT NULL, bal INTEGER NOT NULL)"));
    std::string script;
    for (int i = 0; i < kRows; ++i) {
      script += "INSERT INTO acct VALUES (" + std::to_string(i) + ", 100);\n";
    }
    ASSERT_OK(db_.ExecuteScript(script));
  }

  std::string SumCanon() {
    auto rs = db_.Execute("SELECT SUM(bal) FROM acct");
    EXPECT_OK(rs);
    return rs.ok() ? CanonRows(rs.value().rows) : std::string("<error>");
  }

  Database db_;
};

// Readers must never observe a torn table version: every write statement in
// this workload preserves SUM(bal), so any reader observing a different sum
// has seen a half-applied statement. Three writer shapes cover the three
// DML publication paths: in-place UPDATE (ReplaceRows), paired INSERT
// (AppendRows, both rows in one atomic publish), and paired INSERT+DELETE.
TEST_F(ConcurrencyTest, ReadersNeverSeeTornWrites) {
  const std::string expect = SumCanon();
  ASSERT_NE(expect, "<error>");
  constexpr int kWriters = 3;
  constexpr int kReaders = 5;
  constexpr int kWriterIters = 40;
  std::atomic<bool> done{false};
  FailureLog failures;
  std::atomic<uint64_t> observations{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kWriterIters; ++i) {
        Status st = Status::OK();
        switch ((w + i) % 3) {
          case 0:
            // Balanced: +1 to the low half, -1 to the high half. Confined
            // to the seed rows so the transient pairs stay untouched.
            st = db_.Execute("UPDATE acct SET bal = bal + CASE WHEN id < " +
                             std::to_string(kRows / 2) +
                             " THEN 1 ELSE -1 END WHERE id < " +
                             std::to_string(kRows))
                     .status();
            break;
          case 1:
            // Paired rows summing to zero, one atomic INSERT.
            st = db_.Execute("INSERT INTO acct VALUES (9000, 77), (9001, -77)")
                     .status();
            break;
          default:
            // Remove earlier pairs; each pair sums to zero, so any number of
            // them leaves the invariant intact.
            st = db_.Execute("DELETE FROM acct WHERE id >= 9000").status();
            break;
        }
        if (!st.ok()) failures.Record("writer: " + st.ToString());
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto rs = db_.Execute("SELECT SUM(bal) FROM acct");
        if (!rs.ok()) {
          failures.Record("reader: " + rs.status().ToString());
          continue;
        }
        ++observations;
        const std::string got = CanonRows(rs.value().rows);
        if (got != expect) {
          failures.Record("torn read: SUM(bal) = " + got + ", want " + expect);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  done.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(failures.count(), 0) << failures.first();
  EXPECT_GT(observations.load(), 0u);
  // Cleanup pairs may remain (writers race); the invariant must still hold
  // on the quiesced database.
  EXPECT_EQ(SumCanon(), expect);
}

// Concurrent writers confined to disjoint id ranges must commute: the final
// table bytes equal a serial replay of every thread's statement list.
TEST_F(ConcurrencyTest, DisjointWritersMatchSerialReplay) {
  constexpr int kThreads = 8;
  constexpr int kRangeWidth = kRows / kThreads;
  // Build each thread's statement list up front so the concurrent run and
  // the serial replay execute the exact same statements.
  std::vector<std::vector<std::string>> scripts(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    const int lo = t * kRangeWidth;
    const int hi = lo + kRangeWidth;
    Rng rng(0xABCDu + static_cast<uint64_t>(t));
    for (int i = 0; i < 30; ++i) {
      switch (rng.Uniform(0, 2)) {
        case 0:
          scripts[static_cast<size_t>(t)].push_back(
              "UPDATE acct SET bal = bal + " + std::to_string(t + 1) +
              " WHERE id >= " + std::to_string(lo) + " AND id < " +
              std::to_string(hi));
          break;
        case 1:
          scripts[static_cast<size_t>(t)].push_back(
              "INSERT INTO acct VALUES (" +
              std::to_string(10000 + t * 1000 + i) + ", " +
              std::to_string(rng.Uniform(-50, 50)) + ")");
          break;
        default:
          scripts[static_cast<size_t>(t)].push_back(
              "DELETE FROM acct WHERE id = " +
              std::to_string(lo + rng.Uniform(0, kRangeWidth - 1)));
          break;
      }
    }
  }

  FailureLog failures;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const std::string& sql : scripts[static_cast<size_t>(t)]) {
        Status st = db_.Execute(sql).status();
        if (!st.ok()) failures.Record(sql + ": " + st.ToString());
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.count(), 0) << failures.first();

  Database serial;
  ASSERT_OK(serial.ExecuteScript(
      "CREATE TABLE acct (id INTEGER NOT NULL, bal INTEGER NOT NULL)"));
  std::string seed_script;
  for (int i = 0; i < kRows; ++i) {
    seed_script += "INSERT INTO acct VALUES (" + std::to_string(i) +
                   ", 100);\n";
  }
  ASSERT_OK(serial.ExecuteScript(seed_script));
  for (const auto& script : scripts) {
    for (const std::string& sql : script) {
      ASSERT_TRUE(serial.Execute(sql).ok()) << sql;
    }
  }
  const std::string order = "SELECT id, bal FROM acct ORDER BY id, bal";
  ASSERT_OK_AND_ASSIGN(auto got, db_.Execute(order));
  ASSERT_OK_AND_ASSIGN(auto want, serial.Execute(order));
  EXPECT_EQ(CanonRows(got.rows), CanonRows(want.rows));
}

// DDL from one thread while others scan: CREATE TABLE / CREATE INDEX take
// the exclusive statement guard, reads take it shared. Nothing may crash,
// fail, or observe a half-registered catalog entry.
TEST_F(ConcurrencyTest, DdlConcurrentWithScans) {
  constexpr int kDdlThreads = 4;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  FailureLog failures;
  std::vector<std::thread> threads;
  for (int t = 0; t < kDdlThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string tbl = "side" + std::to_string(t);
      Status st = db_.Execute("CREATE TABLE " + tbl +
                              " (k INTEGER, v INTEGER)")
                      .status();
      if (!st.ok()) failures.Record(st.ToString());
      for (int i = 0; i < 20; ++i) {
        st = db_.Execute("INSERT INTO " + tbl + " VALUES (" +
                         std::to_string(i) + ", " + std::to_string(i * t) +
                         ")")
                 .status();
        if (!st.ok()) failures.Record(st.ToString());
      }
      st = db_.Execute("CREATE INDEX " + tbl + "_k ON " + tbl + " (k)")
               .status();
      if (!st.ok()) failures.Record(st.ToString());
      auto rs = db_.Execute("SELECT COUNT(*) FROM " + tbl + " WHERE k >= 0");
      if (!rs.ok()) {
        failures.Record(rs.status().ToString());
      } else if (CanonRows(rs.value().rows) != CanonRows({{Value::Int(20)}})) {
        failures.Record(tbl + ": wrong count " + CanonRows(rs.value().rows));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto rs = db_.Execute("SELECT COUNT(*), SUM(bal) FROM acct");
        if (!rs.ok()) failures.Record(rs.status().ToString());
      }
    });
  }
  for (int t = 0; t < kDdlThreads; ++t) threads[static_cast<size_t>(t)].join();
  done.store(true, std::memory_order_release);
  for (size_t i = kDdlThreads; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(failures.count(), 0) << failures.first();
}

// Statement accounting must reconcile across threads: the process-wide
// metrics counter moves by exactly the number of statements issued.
TEST_F(ConcurrencyTest, MetricsReconcileAcrossThreads) {
  obs::MetricsRegistry* metrics = obs::MetricsRegistry::Global();
  const uint64_t before =
      metrics->CounterValue("mtbase_engine_statements_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  FailureLog failures;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto rs = db_.Execute("SELECT COUNT(*) FROM acct");
        if (!rs.ok()) failures.Record(rs.status().ToString());
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.count(), 0) << failures.first();
  EXPECT_EQ(metrics->CounterValue("mtbase_engine_statements_total") - before,
            static_cast<uint64_t>(kThreads * kPerThread));
}

// Time-boxed stress mix (ctest label `stress`; the TSan CI lane raises
// MTBASE_STRESS_SECONDS). Eight threads hammer the balanced workload plus
// periodic index DDL while every reader checks the SUM invariant.
TEST_F(ConcurrencyTest, StressMixedWorkloadInvariants) {
  const uint64_t budget_s = EnvU64("MTBASE_STRESS_SECONDS", 1);
  const std::string expect = SumCanon();
  ASSERT_NE(expect, "<error>");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(budget_s);
  constexpr int kThreads = 8;
  FailureLog failures;
  std::atomic<uint64_t> statements{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x57E55u + static_cast<uint64_t>(t) * 131);
      int iter = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        ++iter;
        Status st = Status::OK();
        if (t % 2 == 0) {
          // Reader half: snapshot invariant on every observation.
          auto rs = db_.Execute("SELECT SUM(bal) FROM acct");
          st = rs.status();
          if (rs.ok() && CanonRows(rs.value().rows) != expect) {
            failures.Record("stress torn read: " + CanonRows(rs.value().rows));
          }
        } else if (iter % 37 == 0) {
          // Occasional DDL: an index on the hot table mid-update.
          st = db_.Execute("CREATE INDEX stress_ix_" + std::to_string(t) +
                           "_" + std::to_string(iter) + " ON acct (id)")
                   .status();
        } else if (rng.Chance(0.5)) {
          st = db_.Execute("UPDATE acct SET bal = bal + CASE WHEN id < " +
                           std::to_string(kRows / 2) +
                           " THEN 1 ELSE -1 END WHERE id < " +
                           std::to_string(kRows))
                   .status();
        } else if (rng.Chance(0.5)) {
          st = db_.Execute("INSERT INTO acct VALUES (9100, 13), (9101, -13)")
                   .status();
        } else {
          st = db_.Execute("DELETE FROM acct WHERE id >= 9100").status();
        }
        ++statements;
        if (!st.ok()) failures.Record(st.ToString());
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.count(), 0) << failures.first();
  EXPECT_GT(statements.load(), 0u);
  EXPECT_EQ(SumCanon(), expect);
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
