// Serial-vs-parallel differential harness.
//
// A seeded random query generator produces typed SELECTs — projections,
// arithmetic, filters (AND/OR, IS NULL, IN lists, BETWEEN, LIKE), equi
// joins, GROUP BY aggregates, multi-key ORDER BY with mixed ASC/DESC over
// NULL-bearing columns, LIMIT/OFFSET, DISTINCT — and executes every query
// twice against the same database: once with max_threads = 1 and once with
// max_threads = 4 under a lowered min_parallel_rows gate. Results must be
// byte-identical (row order included) and the row-level counters must
// match: parallelism is a perf knob, never a semantics knob.
//
// Reproduction: every failure message carries the generator seed and the
// offending SQL. Re-run with MTBASE_DIFF_SEED=<seed> (and optionally
// MTBASE_DIFF_QUERIES=<n>) to replay the exact sequence. The SeedSweep test
// (ctest label `long`) walks fresh seeds for a time budget
// (MTBASE_DIFF_SWEEP_SECONDS) so CI keeps exploring new query shapes
// without unbounded runtime.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/database.h"
#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::string Canon(const ResultSet& rs) { return CanonRows(rs.rows); }

// ---------------------------------------------------------------------------
// Random query generation
// ---------------------------------------------------------------------------

/// Typed column pool of the generated schema. Single-letter column names;
/// generated select-item aliases are o0, o1, ... so ORDER BY references
/// never collide with them.
struct Column {
  const char* table;
  const char* name;
  enum class Type { kInt, kStr, kDec } type;
};

const std::vector<Column>& RCols() {
  static const std::vector<Column> cols = {
      {"r", "a", Column::Type::kInt},
      {"r", "b", Column::Type::kInt},
      {"r", "c", Column::Type::kStr},
      {"r", "d", Column::Type::kDec},
  };
  return cols;
}

const std::vector<Column>& SCols() {
  static const std::vector<Column> cols = {
      {"s", "a", Column::Type::kInt},
      {"s", "f", Column::Type::kInt},
      {"s", "g", Column::Type::kStr},
  };
  return cols;
}

class QueryGen {
 public:
  QueryGen(uint64_t seed, bool join) : rng_(seed), join_(join) {
    cols_ = RCols();
    if (join_) {
      for (const Column& c : SCols()) cols_.push_back(c);
    }
  }

  std::string Generate() {
    const bool aggregate = rng_.Chance(0.35);
    std::string select_list;
    std::vector<std::string> aliases;
    int n_items = 0;
    auto add_item = [&](const std::string& expr) {
      std::string alias = "o" + std::to_string(n_items++);
      if (!select_list.empty()) select_list += ", ";
      select_list += expr + " AS " + alias;
      aliases.push_back(std::move(alias));
    };

    std::vector<std::string> group_cols;
    if (aggregate) {
      const int n_groups = static_cast<int>(rng_.Uniform(1, 2));
      for (int i = 0; i < n_groups; ++i) {
        group_cols.push_back(Ref(rng_.Pick(cols_)));
      }
      for (const std::string& g : group_cols) add_item(g);
      const int n_aggs = static_cast<int>(rng_.Uniform(1, 3));
      for (int i = 0; i < n_aggs; ++i) add_item(AggExpr());
    } else {
      const int n = static_cast<int>(rng_.Uniform(1, 4));
      for (int i = 0; i < n; ++i) {
        add_item(rng_.Chance(0.3) ? IntExpr(2) : Ref(rng_.Pick(cols_)));
      }
    }

    std::string sql = "SELECT ";
    if (!aggregate && rng_.Chance(0.1)) sql += "DISTINCT ";
    sql += select_list;
    sql += join_ ? " FROM r, s" : " FROM r";

    std::string where;
    if (join_) where = "r.a = s.a";  // hash-join key
    if (rng_.Chance(0.75)) {
      std::string pred = Predicate();
      where = where.empty() ? pred : where + " AND " + pred;
    }
    if (!where.empty()) sql += " WHERE " + where;

    if (!group_cols.empty()) {
      sql += " GROUP BY ";
      for (size_t i = 0; i < group_cols.size(); ++i) {
        if (i > 0) sql += ", ";
        sql += group_cols[i];
      }
    }

    if (rng_.Chance(0.7)) {
      // ORDER BY a random subset of output aliases, mixed directions. Ties
      // (and whole-query duplicates) are common by construction: stability
      // is what the differential run is really probing.
      sql += " ORDER BY ";
      const int keys =
          static_cast<int>(rng_.Uniform(1, static_cast<int64_t>(aliases.size())));
      for (int i = 0; i < keys; ++i) {
        if (i > 0) sql += ", ";
        sql += rng_.Pick(aliases);
        if (rng_.Chance(0.5)) sql += " DESC";
      }
      if (rng_.Chance(0.5)) {
        sql += " LIMIT " + std::to_string(rng_.Uniform(0, 40));
        if (rng_.Chance(0.4)) {
          sql += " OFFSET " + std::to_string(rng_.Uniform(0, 25));
        }
      }
    } else if (rng_.Chance(0.15)) {
      sql += " LIMIT " + std::to_string(rng_.Uniform(0, 40));
    }
    return sql;
  }

 private:
  std::string Ref(const Column& c) {
    return join_ ? std::string(c.table) + "." + c.name : std::string(c.name);
  }

  const Column& PickTyped(Column::Type t) {
    for (;;) {
      const Column& c = rng_.Pick(cols_);
      if (c.type == t) return c;
    }
  }

  std::string IntLit() { return std::to_string(rng_.Uniform(0, 30)); }

  std::string StrLit() {
    static const std::vector<std::string> pool = {"'aa'", "'ab'", "'ba'",
                                                  "'bb'", "'cc'", "'zz'"};
    return rng_.Pick(pool);
  }

  std::string DecLit() {
    return std::to_string(rng_.Uniform(0, 40)) + "." +
           std::to_string(rng_.Uniform(10, 99));
  }

  /// Integer-typed expression (division deliberately excluded: a zero
  /// denominator would turn the differential run into an error-parity test
  /// for most seeds).
  std::string IntExpr(int depth) {
    if (depth <= 0 || rng_.Chance(0.5)) {
      return rng_.Chance(0.75) ? Ref(PickTyped(Column::Type::kInt)) : IntLit();
    }
    const char* op = rng_.Chance(0.6) ? " + " : (rng_.Chance(0.5) ? " - " : " * ");
    return "(" + IntExpr(depth - 1) + op + IntExpr(depth - 1) + ")";
  }

  std::string AggExpr() {
    switch (rng_.Uniform(0, 4)) {
      case 0: return "COUNT(*)";
      case 1: return "SUM(" + IntExpr(1) + ")";
      case 2: return "MIN(" + Ref(rng_.Pick(cols_)) + ")";
      case 3: return "MAX(" + Ref(rng_.Pick(cols_)) + ")";
      default: return "AVG(" + Ref(PickTyped(Column::Type::kInt)) + ")";
    }
  }

  std::string SimplePred() {
    static const std::vector<std::string> cmps = {" = ", " <> ", " < ",
                                                  " <= ", " > ", " >= "};
    switch (rng_.Uniform(0, 5)) {
      case 0:
        return IntExpr(1) + rng_.Pick(cmps) + IntLit();
      case 1: {
        if (rng_.Chance(0.3)) {
          static const std::vector<std::string> patterns = {"'a%'", "'%b'",
                                                            "'_a%'", "'z%'"};
          return Ref(PickTyped(Column::Type::kStr)) +
                 (rng_.Chance(0.7) ? " LIKE " : " NOT LIKE ") +
                 rng_.Pick(patterns);
        }
        return Ref(PickTyped(Column::Type::kStr)) + rng_.Pick(cmps) + StrLit();
      }
      case 2:
        return Ref(PickTyped(Column::Type::kDec)) + rng_.Pick(cmps) + DecLit();
      case 3: {
        std::string p = Ref(rng_.Pick(cols_)) + " IS ";
        if (rng_.Chance(0.5)) p += "NOT ";
        return p + "NULL";
      }
      case 4:
        return Ref(PickTyped(Column::Type::kInt)) + " IN (" + IntLit() + ", " +
               IntLit() + ", " + IntLit() + ")";
      default: {
        int64_t lo = rng_.Uniform(0, 20);
        return Ref(PickTyped(Column::Type::kInt)) + " BETWEEN " +
               std::to_string(lo) + " AND " + std::to_string(lo + rng_.Uniform(0, 15));
      }
    }
  }

  std::string Predicate() {
    std::string p = SimplePred();
    const int extra = static_cast<int>(rng_.Uniform(0, 2));
    for (int i = 0; i < extra; ++i) {
      p = "(" + p + (rng_.Chance(0.6) ? " AND " : " OR ") + SimplePred() + ")";
    }
    return p;
  }

  Rng rng_;
  bool join_;
  std::vector<Column> cols_;
};

// ---------------------------------------------------------------------------
// Fixture: one NULL-bearing two-table database shared by all checks
// ---------------------------------------------------------------------------

class DifferentialTest : public ::testing::Test {
 protected:
  static constexpr size_t kRRows = 1100;
  static constexpr size_t kSRows = 500;

  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      CREATE TABLE r (a INTEGER, b INTEGER, c VARCHAR(4), d DECIMAL(10,2));
      CREATE TABLE s (a INTEGER, f INTEGER, g VARCHAR(4));
    )"));
    // Deterministic data, independent of the query seed: narrow value
    // domains create heavy duplication (sort ties, repeated join keys,
    // small aggregate groups) and every nullable column carries NULLs.
    Rng rng(0xD1FFu);
    static const char* strs[] = {"aa", "ab", "ba", "bb", "cc", "zz"};
    insert_script_.clear();
    for (size_t i = 0; i < kRRows; ++i) {
      insert_script_ += "INSERT INTO r VALUES (" + GenInt(&rng, 18) + ", " +
                        GenInt(&rng, 30) + ", " + GenStr(&rng, strs) + ", " +
                        GenDec(&rng) + ");\n";
    }
    for (size_t i = 0; i < kSRows; ++i) {
      insert_script_ += "INSERT INTO s VALUES (" + GenInt(&rng, 18) + ", " +
                        GenInt(&rng, 12) + ", " + GenStr(&rng, strs) + ");\n";
    }
    ASSERT_OK(db_.ExecuteScript(insert_script_));
  }

  static std::string GenInt(Rng* rng, int64_t domain) {
    if (rng->Chance(0.12)) return "NULL";
    return std::to_string(rng->Uniform(0, domain));
  }
  static std::string GenStr(Rng* rng, const char* const (&pool)[6]) {
    if (rng->Chance(0.12)) return "NULL";
    return "'" + std::string(pool[rng->Uniform(0, 5)]) + "'";
  }
  static std::string GenDec(Rng* rng) {
    if (rng->Chance(0.12)) return "NULL";
    return std::to_string(rng->Uniform(0, 25)) + "." +
           std::to_string(rng->Uniform(10, 99));
  }

  void SetParallelism(int max_threads, size_t min_rows) {
    PlannerOptions opts = db_.planner_options();
    opts.max_threads = max_threads;
    opts.min_parallel_rows = min_rows;
    db_.set_planner_options(opts);
  }

  /// Run `count` generated queries for `seed`; every query executes serial
  /// then parallel and must agree byte-for-byte with matching row counters.
  void RunBatch(uint64_t seed, uint64_t count) {
    QueryGen single(seed, /*join=*/false);
    QueryGen joined(seed ^ 0x9E3779B97F4A7C15ull, /*join=*/true);
    Rng pick(seed + 1);
    uint64_t parallel_queries = 0;
    StatsScope batch(db_.stats());
    for (uint64_t i = 0; i < count; ++i) {
      const bool join = pick.Chance(0.4);
      const std::string sql = (join ? joined : single).Generate();
      SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" +
                   std::to_string(i) + ": " + sql);
      SetParallelism(1, 4096);
      StatsScope serial_scope(db_.stats());
      auto serial = db_.Execute(sql);
      ASSERT_OK(serial);
      ExecStats serial_stats = serial_scope.Delta();
      SetParallelism(4, 48);
      StatsScope par_scope(db_.stats());
      auto par = db_.Execute(sql);
      ASSERT_OK(par);
      ExecStats par_stats = par_scope.Delta();
      ASSERT_EQ(Canon(serial.value()), Canon(par.value()));
      // Row-level counter parity: the parallel run scans and joins exactly
      // the rows the serial run did (no UDFs here, so totals are
      // schedule-independent).
      ASSERT_EQ(serial_stats.rows_scanned, par_stats.rows_scanned);
      ASSERT_EQ(serial_stats.rows_joined, par_stats.rows_joined);
      ASSERT_EQ(serial_stats.topn_pushdowns, par_stats.topn_pushdowns);
      ASSERT_EQ(serial_stats.parallel_morsels, 0u);
      if (par_stats.parallel_morsels > 0) parallel_queries++;
    }
    SetParallelism(1, 4096);
    // The batch must actually exercise the machinery it guards: most
    // queries parallelize under the lowered gate, and the generator mix
    // produces both parallel sorts and top-N pushdowns.
    ExecStats totals = batch.Delta();
    EXPECT_GT(parallel_queries, count / 2) << "seed=" << seed;
    EXPECT_GT(totals.parallel_sorts, 0u) << "seed=" << seed;
    EXPECT_GT(totals.topn_pushdowns, 0u) << "seed=" << seed;
  }

  /// Same-schema sibling database whose tables carry a randomized physical
  /// design (seeded hash/list partitioning on the join key plus leading
  /// indexes) over identical data. Physical design must never change bytes.
  void BuildPhysicalTwin(Database* twin, uint64_t seed) {
    Rng rng(seed * 2 + 1);
    std::string r_ddl =
        "CREATE TABLE r (a INTEGER, b INTEGER, c VARCHAR(4), d DECIMAL(10,2))";
    if (rng.Chance(0.5)) {
      r_ddl += " PARTITION BY HASH (a) PARTITIONS " +
               std::to_string(rng.Uniform(2, 8));
    } else {
      // Value domain of column a is [0, 18) plus NULLs; leave a few values
      // to the implicit overflow partition on purpose.
      r_ddl += " PARTITION BY LIST (a) (VALUES (0, 1, 2, 3), "
               "VALUES (4, 7, 9), VALUES (12, 15))";
    }
    ASSERT_OK(twin->Execute(r_ddl).status());
    std::string s_ddl = "CREATE TABLE s (a INTEGER, f INTEGER, g VARCHAR(4))";
    if (rng.Chance(0.5)) {
      s_ddl += " PARTITION BY HASH (a) PARTITIONS " +
               std::to_string(rng.Uniform(2, 6));
    }
    ASSERT_OK(twin->Execute(s_ddl).status());
    // r is always partitioned on a, so a-conjuncts prune there; the b- and
    // f-leading indexes are what the index-scan path actually exercises.
    ASSERT_OK(twin->Execute("CREATE INDEX r_b ON r (b, a)").status());
    ASSERT_OK(twin->Execute("CREATE INDEX s_a ON s (a)").status());
    if (rng.Chance(0.7)) {
      ASSERT_OK(twin->Execute("CREATE INDEX s_f ON s (f)").status());
    }
    ASSERT_OK(twin->ExecuteScript(insert_script_));
  }

  Database db_;
  std::string insert_script_;
};

TEST_F(DifferentialTest, RandomQueriesSerialVsParallel) {
  const uint64_t seed = EnvU64("MTBASE_DIFF_SEED", 0xC0FFEEull);
  const uint64_t count = EnvU64("MTBASE_DIFF_QUERIES", 200);
  RunBatch(seed, count);
}

// Physical-design differential: the same generated queries against a twin
// database with randomized ttid-style partitioning and leading indexes, at 1
// and at 4 threads. All three runs (flat serial, physical serial, physical
// parallel) must agree byte-for-byte — partition pruning and index scans are
// perf knobs, never semantics knobs — and the batch must actually hit both
// access paths.
TEST_F(DifferentialTest, PartitionedAndIndexedTwinMatchesFlat) {
  const uint64_t seed = EnvU64("MTBASE_DIFF_SEED", 0xBEEFull);
  const uint64_t count = EnvU64("MTBASE_DIFF_QUERIES", 120);
  Database twin;
  BuildPhysicalTwin(&twin, seed);
  if (HasFatalFailure()) return;
  QueryGen single(seed, /*join=*/false);
  QueryGen joined(seed ^ 0x9E3779B97F4A7C15ull, /*join=*/true);
  Rng pick(seed + 1);
  StatsScope twin_stats(twin.stats());
  for (uint64_t i = 0; i < count; ++i) {
    const bool join = pick.Chance(0.4);
    const std::string sql = (join ? joined : single).Generate();
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" +
                 std::to_string(i) + ": " + sql);
    SetParallelism(1, 4096);
    auto flat = db_.Execute(sql);
    ASSERT_OK(flat);
    auto set_twin = [&twin](int threads, size_t min_rows) {
      PlannerOptions opts = twin.planner_options();
      opts.max_threads = threads;
      opts.min_parallel_rows = min_rows;
      twin.set_planner_options(opts);
    };
    set_twin(1, 4096);
    auto phys_serial = twin.Execute(sql);
    ASSERT_OK(phys_serial);
    set_twin(4, 48);
    auto phys_par = twin.Execute(sql);
    ASSERT_OK(phys_par);
    const std::string expect = Canon(flat.value());
    ASSERT_EQ(expect, Canon(phys_serial.value()));
    ASSERT_EQ(expect, Canon(phys_par.value()));
  }
  // The generator's `a = lit` / `a IN (...)` predicates must have driven
  // both physical access paths at least once, or this test guards nothing.
  EXPECT_GT(twin_stats.Delta().partitions_pruned, 0u) << "seed=" << seed;
  EXPECT_GT(twin_stats.Delta().index_scans, 0u) << "seed=" << seed;
}

// Concurrent differential batch: one seeded sequence of generated read-only
// queries, executed once serially (the oracle) and then by K concurrent
// streams over the same database with intra-query parallelism enabled. Every
// stream must reproduce the oracle byte-for-byte on every query — inter-
// statement concurrency, like intra-statement parallelism, is a perf knob,
// never a semantics knob. Replay any failure with MTBASE_DIFF_SEED (and
// MTBASE_DIFF_QUERIES); the failure message carries seed, stream and query.
TEST_F(DifferentialTest, ConcurrentStreamsMatchSerialOracle) {
  const uint64_t seed = EnvU64("MTBASE_DIFF_SEED", 0xFACEull);
  const uint64_t count = EnvU64("MTBASE_DIFF_QUERIES", 60);
  constexpr int kStreams = 8;
  QueryGen single(seed, /*join=*/false);
  QueryGen joined(seed ^ 0x9E3779B97F4A7C15ull, /*join=*/true);
  Rng pick(seed + 1);
  std::vector<std::string> queries;
  for (uint64_t i = 0; i < count; ++i) {
    queries.push_back((pick.Chance(0.4) ? joined : single).Generate());
  }
  // Serial oracle at 1 thread.
  SetParallelism(1, 4096);
  std::vector<std::string> oracle;
  for (const std::string& sql : queries) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " oracle: " + sql);
    auto rs = db_.Execute(sql);
    ASSERT_OK(rs);
    oracle.push_back(Canon(rs.value()));
  }
  // K concurrent streams, parallel operators on.
  SetParallelism(4, 48);
  std::vector<std::string> errors(kStreams);
  std::vector<std::thread> streams;
  for (int s = 0; s < kStreams; ++s) {
    streams.emplace_back([&, s] {
      for (size_t i = 0; i < queries.size(); ++i) {
        auto rs = db_.Execute(queries[i]);
        if (!rs.ok()) {
          errors[static_cast<size_t>(s)] =
              "seed=" + std::to_string(seed) + " stream " +
              std::to_string(s) + " query#" + std::to_string(i) + " " +
              queries[i] + ": " + rs.status().ToString();
          return;
        }
        if (Canon(rs.value()) != oracle[i]) {
          errors[static_cast<size_t>(s)] =
              "seed=" + std::to_string(seed) + " stream " +
              std::to_string(s) + " diverged on query#" + std::to_string(i) +
              ": " + queries[i];
          return;
        }
      }
    });
  }
  for (std::thread& th : streams) th.join();
  SetParallelism(1, 4096);
  for (const std::string& err : errors) {
    EXPECT_TRUE(err.empty()) << err;
  }
}

// Time-boxed sweep over fresh seeds (ctest label `long`). Each round is a
// small batch under a new seed; the base seed is randomized per run and
// printed so any failure is replayable via MTBASE_DIFF_SEED.
TEST_F(DifferentialTest, SeedSweepTimeBoxed) {
  const uint64_t budget_s = EnvU64("MTBASE_DIFF_SWEEP_SECONDS", 5);
  uint64_t base = EnvU64("MTBASE_DIFF_SEED", 0);
  if (base == 0) {
    base = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }
  std::cout << "seed sweep base seed: " << base << " (budget " << budget_s
            << "s)\n";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(budget_s);
  uint64_t rounds = 0;
  do {
    RunBatch(base + rounds, 40);
    if (HasFatalFailure()) return;
    ++rounds;
  } while (std::chrono::steady_clock::now() < deadline);
  std::cout << "seed sweep: " << rounds << " rounds x 40 queries\n";
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
