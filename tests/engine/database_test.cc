#include "engine/database.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mtbase {
namespace engine {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR(10), c DECIMAL(15,2));
      INSERT INTO t VALUES (1, 'x', 1.50), (2, 'y', 2.50), (3, NULL, 3.50);
    )"));
  }

  std::vector<Row> Rows(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << sql;
    return r.ok() ? r.value().rows : std::vector<Row>{};
  }

  Value Scalar(const std::string& sql) {
    auto rows = Rows(sql);
    EXPECT_EQ(rows.size(), 1u) << sql;
    return rows.empty() ? Value::Null() : rows[0][0];
  }

  Database db_;
};

TEST_F(DatabaseTest, SelectAll) {
  EXPECT_EQ(Rows("SELECT * FROM t").size(), 3u);
}

TEST_F(DatabaseTest, FilterPushdown) {
  auto rows = Rows("SELECT a FROM t WHERE a >= 2");
  ASSERT_EQ(rows.size(), 2u);
}

TEST_F(DatabaseTest, SelectWithoutFrom) {
  EXPECT_EQ(Scalar("SELECT 1 + 2 * 3").int_value(), 7);
}

TEST_F(DatabaseTest, ArithmeticTypes) {
  EXPECT_EQ(Scalar("SELECT 7 / 2").decimal_value().ToString(), "3.500000");
  EXPECT_EQ(Scalar("SELECT 1.5 + 1").decimal_value().ToString(), "2.5");
  EXPECT_EQ(Scalar("SELECT -(2 - 5)").int_value(), 3);
}

TEST_F(DatabaseTest, NullPropagation) {
  EXPECT_TRUE(Scalar("SELECT b || 'z' FROM t WHERE a = 3").is_null());
  EXPECT_EQ(Rows("SELECT a FROM t WHERE b = 'nope'").size(), 0u);
  // NULL in comparison is unknown, filtered out.
  EXPECT_EQ(Rows("SELECT a FROM t WHERE b <> 'x'").size(), 1u);
}

TEST_F(DatabaseTest, ThreeValuedLogic) {
  // NULL OR TRUE = TRUE; NULL AND TRUE = NULL (filtered).
  EXPECT_EQ(Rows("SELECT a FROM t WHERE b = 'q' OR a = 3").size(), 1u);
  EXPECT_EQ(Rows("SELECT a FROM t WHERE (b = b) AND a = 3").size(), 0u);
  EXPECT_EQ(Rows("SELECT a FROM t WHERE b IS NULL").size(), 1u);
  EXPECT_EQ(Rows("SELECT a FROM t WHERE b IS NOT NULL").size(), 2u);
}

TEST_F(DatabaseTest, LikeAndInList) {
  EXPECT_EQ(Rows("SELECT a FROM t WHERE b LIKE '_'").size(), 2u);
  EXPECT_EQ(Rows("SELECT a FROM t WHERE a IN (1, 3, 5)").size(), 2u);
  EXPECT_EQ(Rows("SELECT a FROM t WHERE a NOT IN (1, 3)").size(), 1u);
}

TEST_F(DatabaseTest, CaseExpression) {
  auto rows = Rows(
      "SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' "
      "END FROM t ORDER BY a");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].string_value(), "one");
  EXPECT_EQ(rows[2][0].string_value(), "many");
}

TEST_F(DatabaseTest, Aggregates) {
  auto rows = Rows(
      "SELECT COUNT(*), COUNT(b), SUM(c), AVG(c), MIN(a), MAX(a) FROM t");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_value(), 3);
  EXPECT_EQ(rows[0][1].int_value(), 2);  // NULL ignored
  EXPECT_EQ(rows[0][2].decimal_value().ToString(), "7.5");
  EXPECT_EQ(rows[0][3].decimal_value().ToString(), "2.500000");
  EXPECT_EQ(rows[0][4].int_value(), 1);
  EXPECT_EQ(rows[0][5].int_value(), 3);
}

TEST_F(DatabaseTest, EmptyAggregates) {
  auto rows = Rows("SELECT COUNT(*), SUM(a) FROM t WHERE a > 100");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_value(), 0);
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST_F(DatabaseTest, GroupByWithHaving) {
  ASSERT_OK(db_.Execute("INSERT INTO t VALUES (4, 'x', 4.00)"));
  auto rows = Rows(
      "SELECT b, COUNT(*) AS cnt FROM t WHERE b IS NOT NULL GROUP BY b "
      "HAVING COUNT(*) > 1 ORDER BY b");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].string_value(), "x");
  EXPECT_EQ(rows[0][1].int_value(), 2);
}

TEST_F(DatabaseTest, OrderByAliasAndHiddenColumn) {
  auto rows = Rows("SELECT a AS key FROM t ORDER BY key DESC");
  EXPECT_EQ(rows[0][0].int_value(), 3);
  // ORDER BY an expression not in the select list.
  rows = Rows("SELECT b FROM t ORDER BY a DESC LIMIT 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 1u);  // hidden sort column dropped
}

TEST_F(DatabaseTest, Distinct) {
  ASSERT_OK(db_.Execute("INSERT INTO t VALUES (5, 'x', 9.99)"));
  EXPECT_EQ(Rows("SELECT DISTINCT b FROM t WHERE b IS NOT NULL").size(), 2u);
}

TEST_F(DatabaseTest, UpdateAndDelete) {
  ASSERT_OK_AND_ASSIGN(auto r, db_.Execute("UPDATE t SET c = c * 2 WHERE a <= 2"));
  EXPECT_EQ(r.rows[0][0].int_value(), 2);
  EXPECT_DOUBLE_EQ(Scalar("SELECT c FROM t WHERE a = 1").AsDouble(), 3.0);
  ASSERT_OK_AND_ASSIGN(r, db_.Execute("DELETE FROM t WHERE a = 3"));
  EXPECT_EQ(r.rows[0][0].int_value(), 1);
  EXPECT_EQ(Rows("SELECT * FROM t").size(), 2u);
}

TEST_F(DatabaseTest, InsertColumnSubsetFillsNull) {
  ASSERT_OK(db_.Execute("INSERT INTO t (a) VALUES (9)"));
  EXPECT_TRUE(Scalar("SELECT b FROM t WHERE a = 9").is_null());
}

TEST_F(DatabaseTest, NotNullEnforced) {
  EXPECT_FALSE(db_.Execute("INSERT INTO t (b) VALUES ('z')").ok());
}

TEST_F(DatabaseTest, Views) {
  ASSERT_OK(db_.Execute("CREATE VIEW big AS SELECT a, c FROM t WHERE c > 2"));
  EXPECT_EQ(Rows("SELECT * FROM big").size(), 2u);
  EXPECT_EQ(Rows("SELECT v.a FROM big v WHERE v.c > 3").size(), 1u);
  ASSERT_OK(db_.Execute("DROP VIEW big"));
  EXPECT_FALSE(db_.Execute("SELECT * FROM big").ok());
}

TEST_F(DatabaseTest, DropTable) {
  ASSERT_OK(db_.Execute("CREATE TABLE gone (x INTEGER)"));
  ASSERT_OK(db_.Execute("DROP TABLE gone"));
  EXPECT_FALSE(db_.Execute("SELECT * FROM gone").ok());
  EXPECT_FALSE(db_.Execute("DROP TABLE gone").ok());
}

TEST_F(DatabaseTest, ErrorMessages) {
  EXPECT_EQ(db_.Execute("SELECT nope FROM t").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.Execute("SELECT * FROM missing").status().code(),
            StatusCode::kNotFound);
  // Duplicate binding of t: the column lookup is ambiguous.
  EXPECT_FALSE(db_.Execute("SELECT a FROM t, t").ok());
}

TEST_F(DatabaseTest, ConstraintValidation) {
  ASSERT_OK(db_.ExecuteScript(R"(
    CREATE TABLE parent (id INTEGER NOT NULL, CONSTRAINT pk PRIMARY KEY (id));
    CREATE TABLE child (pid INTEGER NOT NULL,
      CONSTRAINT fk FOREIGN KEY (pid) REFERENCES parent (id));
    INSERT INTO parent VALUES (1), (2);
    INSERT INTO child VALUES (1), (2), (2);
  )"));
  EXPECT_OK(db_.ValidateConstraints("child"));
  ASSERT_OK(db_.Execute("INSERT INTO child VALUES (99)"));
  auto st = db_.ValidateConstraints("child");
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  ASSERT_OK(db_.Execute("INSERT INTO parent VALUES (1)"));
  EXPECT_EQ(db_.ValidateConstraints("parent").code(),
            StatusCode::kConstraintViolation);
}

TEST_F(DatabaseTest, DateArithmeticInQueries) {
  ASSERT_OK(db_.ExecuteScript(R"(
    CREATE TABLE ev (d DATE NOT NULL);
    INSERT INTO ev VALUES (DATE '1994-03-01'), (DATE '1995-06-01');
  )"));
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM ev WHERE d < DATE '1994-01-01' + "
                   "INTERVAL '1' YEAR")
                .int_value(),
            1);
  EXPECT_EQ(Scalar("SELECT EXTRACT(YEAR FROM d) FROM ev ORDER BY d LIMIT 1")
                .int_value(),
            1994);
}

TEST_F(DatabaseTest, StringFunctions) {
  EXPECT_EQ(Scalar("SELECT SUBSTRING('hello' FROM 2 FOR 3)").string_value(),
            "ell");
  EXPECT_EQ(Scalar("SELECT SUBSTRING('hello', 4)").string_value(), "lo");
  EXPECT_EQ(Scalar("SELECT CONCAT('a', 'b', 'c')").string_value(), "abc");
  EXPECT_EQ(Scalar("SELECT CHAR_LENGTH('abcd')").int_value(), 4);
  EXPECT_EQ(Scalar("SELECT UPPER('aBc')").string_value(), "ABC");
  EXPECT_EQ(Scalar("SELECT COALESCE(NULL, 'x')").string_value(), "x");
  EXPECT_EQ(Scalar("SELECT 'a' || 'b'").string_value(), "ab");
}

}  // namespace
}  // namespace engine
}  // namespace mtbase
