#!/usr/bin/env python3
"""Validate a metrics-registry JSON dump against the documented schema.

The file is the output of obs::MetricsRegistry::RenderJson (written by
`serving_bench --metrics_json=...` and `rewrite_bench --metrics_json=...`):
one JSON object with a "counters" map (metric name -> non-negative integer)
and a "histograms" map (metric name -> {count, sum, p50, p95, p99}). Names
must follow the docs/observability.md convention (mtbase_<layer>_..., counters
ending in _total, histograms in _seconds).

Invoked by the CI quick lane after the serving_bench smoke run, so it also
asserts the serving-layer signals that run must have produced: executed
statements with latency observations, admission-control accounting, and
cross-session plan-cache hits (many sessions issuing the same statements must
share compiled plans).

Usage: python3 tools/check_metrics_json.py <metrics.json>
"""
import json
import math
import re
import sys

COUNTER_RE = re.compile(r"^mtbase_[a-z0-9_]+_total$")
HISTOGRAM_RE = re.compile(r"^mtbase_[a-z0-9_]+_seconds$")
HISTOGRAM_FIELDS = {"count", "sum", "p50", "p95", "p99"}

# The serving smoke run is only a smoke run if these actually moved.
REQUIRED_POSITIVE_COUNTERS = [
    "mtbase_session_statements_total",
    "mtbase_engine_statements_total",
    "mtbase_engine_statements_admitted_total",
    "mtbase_mt_plan_cache_hits_total",
]
REQUIRED_HISTOGRAMS = [
    "mtbase_session_execute_seconds",
    "mtbase_engine_execute_seconds",
    "mtbase_engine_admission_wait_seconds",
]


def fail(msg):
    print(f"check_metrics_json: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_metrics_json.py <metrics.json>")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {sys.argv[1]}: {e}")

    if not isinstance(doc, dict) or set(doc) != {"counters", "histograms"}:
        fail("top level must be an object with exactly "
             "'counters' and 'histograms'")

    counters = doc["counters"]
    if not isinstance(counters, dict):
        fail("'counters' must be an object")
    for name, value in counters.items():
        if not COUNTER_RE.match(name):
            fail(f"counter name {name!r} breaks the "
                 "mtbase_<layer>_..._total convention")
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(f"counter {name} must be a non-negative integer, got "
                 f"{value!r}")

    histograms = doc["histograms"]
    if not isinstance(histograms, dict):
        fail("'histograms' must be an object")
    for name, h in histograms.items():
        if not HISTOGRAM_RE.match(name):
            fail(f"histogram name {name!r} breaks the "
                 "mtbase_<layer>_..._seconds convention")
        if not isinstance(h, dict) or set(h) != HISTOGRAM_FIELDS:
            fail(f"histogram {name} must have exactly fields "
                 f"{sorted(HISTOGRAM_FIELDS)}")
        if not isinstance(h["count"], int) or h["count"] < 0:
            fail(f"histogram {name}: count must be a non-negative integer")
        for field in ("sum", "p50", "p95", "p99"):
            v = h[field]
            if not isinstance(v, (int, float)) or isinstance(v, bool) \
                    or not math.isfinite(v) or v < 0:
                fail(f"histogram {name}: {field} must be a finite "
                     f"non-negative number, got {v!r}")
        if not h["p50"] <= h["p95"] <= h["p99"]:
            fail(f"histogram {name}: quantiles must be monotone "
                 f"(p50 {h['p50']} / p95 {h['p95']} / p99 {h['p99']})")
        if h["count"] == 0 and h["sum"] != 0:
            fail(f"histogram {name}: empty histogram with non-zero sum")

    for name in REQUIRED_POSITIVE_COUNTERS:
        if counters.get(name, 0) <= 0:
            fail(f"required counter {name} missing or zero - the serving "
                 "smoke run did not exercise it")
    for name in REQUIRED_HISTOGRAMS:
        if histograms.get(name, {}).get("count", 0) <= 0:
            fail(f"required histogram {name} missing or empty")

    print(f"check_metrics_json: OK ({len(counters)} counters, "
          f"{len(histograms)} histograms)")


if __name__ == "__main__":
    main()
