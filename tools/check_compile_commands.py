#!/usr/bin/env python3
"""Fail when a source file is missing from the compilation database.

The lint lane runs clang-tidy against compile_commands.json; a .cc file that
never made it into a CMake target silently escapes both the build and the
linter. This check walks src/ (the library code the lane must cover) and
compares against the entries CMake exported.

Usage: check_compile_commands.py <repo-root> <build-dir>
"""

import json
import os
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    root = os.path.abspath(sys.argv[1])
    build = os.path.abspath(sys.argv[2])

    db_path = os.path.join(build, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            entries = json.load(f)
    except OSError as e:
        print(f"error: cannot read {db_path}: {e}", file=sys.stderr)
        return 2

    compiled = set()
    for entry in entries:
        path = entry.get("file", "")
        if not os.path.isabs(path):
            path = os.path.join(entry.get("directory", ""), path)
        compiled.add(os.path.normpath(path))

    missing = []
    src_root = os.path.join(root, "src")
    for dirpath, _, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if not name.endswith(".cc"):
                continue
            path = os.path.normpath(os.path.join(dirpath, name))
            if path not in compiled:
                missing.append(os.path.relpath(path, root))

    if missing:
        print("sources missing from compile_commands.json "
              "(not part of any CMake target):")
        for path in missing:
            print(f"  {path}")
        return 1

    print(f"compile_commands.json covers all "
          f"{sum(1 for p in compiled if p.startswith(src_root))} "
          f"src/ translation units.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
