#!/usr/bin/env python3
"""Validate a statement-trace JSONL file against the documented schema.

Every line must be a standalone JSON object of the shape produced by
obs::StatementTrace::ToJson (docs/observability.md): a statement record with
a monotone sequence number, a layer, an outcome, and one span per executed
phase. Fails with a per-line diagnostic on the first schema departure so the
CI quick lane catches format drift the C++ unit tests cannot see (they assert
substrings, not the whole grammar).

Usage: python3 tools/check_trace_schema.py <trace.jsonl>
"""
import json
import sys

LAYERS = {"engine", "session"}
OUTCOMES = {"ok", "refused", "error"}
PHASES = {"parse", "rewrite", "audit", "plan", "verify", "execute"}
# ExecStats fields, mirroring AppendStatsJson in src/engine/obs/trace.cc.
STATS_FIELDS = {
    "rows_scanned",
    "rows_joined",
    "udf_calls",
    "udf_cache_hits",
    "udf_shared_cache_hits",
    "udf_cache_misses",
    "udf_parallel_evals",
    "subquery_execs",
    "initplan_execs",
    "decorrelated_execs",
    "statements_parsed",
    "statements_rewritten",
    "statements_planned",
    "prepare_count",
    "plan_cache_hits",
    "rewrite_cache_hits",
    "parallel_morsels",
    "parallel_joins",
    "parallel_sorts",
    "topn_pushdowns",
    "topn_rows_pruned",
    "threads_used",
    "plans_verified",
    "verify_violations",
    "rewrites_audited",
    "audit_violations",
}
RECORD_KEYS = {"seq", "layer", "statement", "outcome", "codes", "spans"}
SPAN_KEYS = {"phase", "duration_ms", "outcome", "codes", "stats"}


def check_span(span, where):
    if not isinstance(span, dict):
        return f"{where}: span is not an object"
    unknown = set(span) - SPAN_KEYS
    if unknown:
        return f"{where}: unknown span key(s) {sorted(unknown)}"
    if span.get("phase") not in PHASES:
        return f"{where}: bad phase {span.get('phase')!r}"
    dur = span.get("duration_ms")
    if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
        return f"{where}: bad duration_ms {dur!r}"
    if span.get("outcome") not in OUTCOMES:
        return f"{where}: bad span outcome {span.get('outcome')!r}"
    if "codes" in span and not isinstance(span["codes"], str):
        return f"{where}: span codes is not a string"
    if "stats" in span:
        stats = span["stats"]
        if not isinstance(stats, dict):
            return f"{where}: span stats is not an object"
        bad = set(stats) - STATS_FIELDS
        if bad:
            return f"{where}: unknown stats field(s) {sorted(bad)}"
        for name, value in stats.items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                return f"{where}: stats.{name} is not a non-negative integer"
    return None


def check_record(rec, where):
    if not isinstance(rec, dict):
        return f"{where}: record is not an object"
    unknown = set(rec) - RECORD_KEYS
    if unknown:
        return f"{where}: unknown record key(s) {sorted(unknown)}"
    seq = rec.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        return f"{where}: bad seq {seq!r}"
    if rec.get("layer") not in LAYERS:
        return f"{where}: bad layer {rec.get('layer')!r}"
    if not isinstance(rec.get("statement"), str):
        return f"{where}: statement is not a string"
    if rec.get("outcome") not in OUTCOMES:
        return f"{where}: bad record outcome {rec.get('outcome')!r}"
    if "codes" in rec and not isinstance(rec["codes"], str):
        return f"{where}: record codes is not a string"
    spans = rec.get("spans")
    if not isinstance(spans, list):
        return f"{where}: spans is not a list"
    for i, span in enumerate(spans):
        err = check_span(span, f"{where} span {i}")
        if err:
            return err
    return None


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip().splitlines()[-1])
        return 2
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"cannot read {path}: {e}")
        return 1
    if not lines:
        print(f"{path}: empty trace file")
        return 1
    records = 0
    for n, line in enumerate(lines, 1):
        if not line:
            print(f"{path}:{n}: blank line")
            return 1
        try:
            rec = json.loads(line)
        except ValueError as e:
            print(f"{path}:{n}: invalid JSON: {e}")
            return 1
        err = check_record(rec, f"{path}:{n}")
        if err:
            print(err)
            return 1
        records += 1
    print(f"{path}: {records} trace record(s) conform to the schema.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
