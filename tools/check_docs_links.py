#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans every *.md file in the repository (skipping build trees) and fails if
an inline link [text](target) points at a file or directory that does not
exist. External links (scheme://, mailto:) are ignored; #fragment targets
are checked against the linked file's headings (own-file fragments against
the current file).

Usage: python3 tools/check_docs_links.py [repo_root]
"""
import os
import re
import sys

# Inline links, with or without a title: [text](target) / [text](target "t").
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git", "build", "build-tsan", "third_party", ".claude"}
EXTERNAL = re.compile(r"^[a-z][a-z0-9+.-]*:")  # http:, https:, mailto:, ...


def headings(path):
    """Anchor ids of a markdown file, GitHub-style: fenced code blocks are
    not headings (a '# comment' in a ```sh block must not register), and
    repeated headings get -1, -2, ... suffixes."""
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return set()
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    ids = set()
    seen = {}
    for line in text.splitlines():
        if not line.startswith("#"):
            continue
        heading = line.lstrip("#").strip().lower()
        anchor = re.sub(r"[^\w\- ]", "", heading).replace(" ", "-")
        n = seen.get(anchor, 0)
        seen[anchor] = n + 1
        ids.add(anchor if n == 0 else f"{anchor}-{n}")
    return ids


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    for md in md_files(root):
        base = os.path.dirname(md)
        with open(md, encoding="utf-8") as f:
            text = f.read()
        # Strip fenced code blocks: their bracket syntax is not a link.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if EXTERNAL.match(target):
                continue
            path_part, _, fragment = target.partition("#")
            where = os.path.relpath(md, root)
            if path_part:
                resolved = os.path.normpath(os.path.join(base, path_part))
                if not os.path.exists(resolved):
                    errors.append(f"{where}: dead link -> {target}")
                    continue
                frag_file = resolved
            else:
                frag_file = md
            if fragment and os.path.isfile(frag_file):
                if fragment.lower() not in headings(frag_file):
                    errors.append(f"{where}: missing anchor -> {target}")
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} dead markdown link(s).")
        return 1
    print(f"All intra-repo markdown links resolve under {root}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
